"""Tests for the paged KV-cache manager and preemption-aware serving."""

import dataclasses

import pytest

from repro.core.config import CentConfig
from repro.core.results import ServingResult
from repro.core.system import CentSystem
from repro.cxl.link import CXL_3_0_LINK
from repro.evaluation import overload_preemption_study
from repro.kvstore import (
    PREEMPTION_POLICIES,
    RESTORE_MODES,
    BlockPool,
    KvAllocator,
    PreemptionPolicy,
    kv_swap_time_s,
)
from repro.mapping.parallelism import PipelineParallel
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving import ADMISSION_MODES, RequestState, ServingEngine, ServingRequest
from repro.workloads import (
    Query,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                       num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    config = CentConfig(num_devices=4, context_samples=2)
    return CentSystem(config, small_model)


@pytest.fixture(scope="module")
def pp_plan(small_model):
    return PipelineParallel(4, small_model)


@pytest.fixture(scope="module")
def profile(small_model):
    return ModelMemoryProfile(small_model)


def tight_capacity(profile, contexts, context_length):
    """Capacity fitting the weights plus ``contexts`` full KV caches."""
    return int(profile.parameter_bytes
               + contexts * profile.kv_cache_bytes_per_query(context_length))


class TestBlockPool:
    def test_sizing_rounds_down_to_whole_blocks(self):
        pool = BlockPool(budget_bytes=1000, bytes_per_token=10, block_tokens=16)
        assert pool.block_bytes == 160
        assert pool.num_blocks == 6          # 960 of 1000 bytes usable
        assert pool.capacity_tokens == 96
        assert pool.free_blocks == 6

    def test_blocks_for_rounds_up(self):
        pool = BlockPool(budget_bytes=1000, bytes_per_token=10, block_tokens=16)
        assert pool.blocks_for(0) == 0
        assert pool.blocks_for(1) == 1
        assert pool.blocks_for(16) == 1
        assert pool.blocks_for(17) == 2
        with pytest.raises(ValueError):
            pool.blocks_for(-1)

    def test_occupancy_matches_reserve_effective_capacity(self):
        # kv_occupancy discounts the reserve path's per-query booking, so
        # an occupancy of 0.5 means the budget effectively holds twice the
        # worst-case contexts; the paged pool must see the same capacity,
        # or reserve-vs-paged comparisons at occupancy < 1 are skewed.
        full = BlockPool(budget_bytes=1600, bytes_per_token=10, block_tokens=16)
        half = BlockPool(budget_bytes=1600, bytes_per_token=10, block_tokens=16,
                         occupancy=0.5)
        assert half.num_blocks == 2 * full.num_blocks

    def test_paged_servability_matches_reserve_at_low_occupancy(self):
        # A query the occupancy-discounted reserve path admits must not be
        # permanently rejected by paged admission (up to block rounding).
        model = ModelConfig(name="tiny", num_layers=8, d_model=1024, num_heads=16,
                            num_kv_heads=4, d_ff=2816, vocab_size=32000,
                            max_context=2048)
        config = CentConfig(num_devices=4, context_samples=2, kv_occupancy=0.8)
        system = CentSystem(config, model)
        profile = ModelMemoryProfile(model)
        # Full-context KV is 90% of the budget: reserve books 72% and
        # admits; the paged pool (budget / 0.8) must admit it too.
        budget = int(profile.kv_cache_bytes_per_query(1024) / 0.9)
        capacity = profile.parameter_bytes + budget
        query = Query(512, 512)
        for admission in ("reserve", "paged"):
            engine = ServingEngine(system, memory_capacity_bytes=capacity,
                                   admission=admission)
            assert engine._is_servable(query, budget), admission

    def test_allocate_release_bounds(self):
        pool = BlockPool(budget_bytes=480, bytes_per_token=10, block_tokens=16)
        assert pool.num_blocks == 3
        assert pool.allocate(2)
        assert pool.used_blocks == 2
        assert pool.allocated_bytes == 320
        assert not pool.allocate(2)          # only one block left
        assert pool.free_blocks == 1         # failed allocate is side-effect free
        pool.release(1)
        assert pool.allocate(2)
        assert pool.utilization == 1.0
        with pytest.raises(ValueError):
            pool.release(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockPool(budget_bytes=-1, bytes_per_token=10)
        with pytest.raises(ValueError):
            BlockPool(budget_bytes=100, bytes_per_token=0)
        with pytest.raises(ValueError):
            BlockPool(budget_bytes=100, bytes_per_token=10, block_tokens=0)
        with pytest.raises(ValueError):
            BlockPool(budget_bytes=100, bytes_per_token=10, occupancy=1.5)

    def test_swap_out_frees_device_blocks_and_tracks_host_copies(self):
        pool = BlockPool(budget_bytes=640, bytes_per_token=10, block_tokens=16)
        assert pool.num_blocks == 4
        assert pool.allocate(3)
        pool.swap_out(2)
        # Device blocks freed for others, host copies remembered.
        assert pool.free_blocks == 3
        assert pool.used_blocks == 1
        assert pool.swapped_blocks == 2
        assert pool.free_blocks + pool.used_blocks == pool.num_blocks

    def test_swap_in_is_all_or_nothing(self):
        pool = BlockPool(budget_bytes=640, bytes_per_token=10, block_tokens=16)
        assert pool.allocate(3)
        pool.swap_out(3)                     # free 3, staged 3
        assert pool.allocate(2)              # someone else takes 2
        assert not pool.swap_in(3)           # only 2 free: refused whole
        assert pool.swapped_blocks == 3      # nothing partially granted
        assert pool.free_blocks == 2
        pool.release(2)
        assert pool.swap_in(3)
        assert pool.swapped_blocks == 0
        assert pool.used_blocks == 3

    def test_swap_bounds(self):
        pool = BlockPool(budget_bytes=640, bytes_per_token=10, block_tokens=16)
        assert pool.allocate(2)
        with pytest.raises(ValueError):
            pool.swap_out(3)                 # only 2 in use
        with pytest.raises(ValueError):
            pool.swap_in(1)                  # nothing staged
        pool.swap_out(2)
        with pytest.raises(ValueError):
            pool.drop_swapped(3)             # only 2 staged
        pool.drop_swapped(2)
        assert pool.swapped_blocks == 0
        with pytest.raises(ValueError):
            pool.swap_out(-1)


class TestKvAllocator:
    def make(self, blocks=4, block_tokens=16):
        pool = BlockPool(budget_bytes=blocks * 16 * 10, bytes_per_token=10,
                         block_tokens=block_tokens)
        assert pool.num_blocks == blocks
        return KvAllocator(pool)

    def test_allocate_then_grow_within_block_is_free(self):
        alloc = self.make(blocks=4)
        assert alloc.allocate("a", 10)       # 1 block covers 16 tokens
        assert alloc.holds_blocks("a") == 1
        assert alloc.grow("a", 16)           # same block
        assert alloc.holds_blocks("a") == 1
        assert alloc.grow("a", 17)           # crosses the boundary
        assert alloc.holds_blocks("a") == 2
        assert alloc.holds_tokens("a") == 17

    def test_grow_fails_cleanly_when_pool_dry(self):
        alloc = self.make(blocks=2)
        assert alloc.allocate("a", 16)
        assert alloc.allocate("b", 16)
        assert not alloc.grow("a", 17)       # no third block
        assert alloc.holds_tokens("a") == 16  # failure had no side effects
        assert alloc.release("b") == 16
        assert alloc.grow("a", 17)

    def test_release_frees_everything(self):
        alloc = self.make(blocks=4)
        assert alloc.allocate("a", 50)       # 4 blocks
        assert alloc.pool.free_blocks == 0
        assert alloc.release("a") == 50
        assert alloc.pool.free_blocks == 4
        assert alloc.release("a") == 0       # idempotent for unknown owners

    def test_errors(self):
        alloc = self.make()
        assert alloc.allocate("a", 8)
        with pytest.raises(ValueError):
            alloc.allocate("a", 8)           # double allocation
        with pytest.raises(ValueError):
            alloc.grow("a", 4)               # shrink
        with pytest.raises(ValueError):
            alloc.grow("ghost", 8)           # unknown owner

    def test_partial_evict_and_readmit_roundtrip(self):
        alloc = self.make(blocks=6)
        assert alloc.allocate("a", 80)       # 5 blocks
        assert alloc.evict_blocks("a", 2) == 2
        assert alloc.holds_resident_blocks("a") == 3
        assert alloc.holds_swapped_blocks("a") == 2
        assert alloc.holds_blocks("a") == 5  # logical allocation unchanged
        assert alloc.holds_tokens("a") == 80
        assert alloc.pool.free_blocks == 3   # 1 spare + 2 staged out
        assert alloc.readmit("a")
        assert alloc.holds_resident_blocks("a") == 5
        assert alloc.holds_swapped_blocks("a") == 0
        assert alloc.pool.swapped_blocks == 0

    def test_evict_blocks_bounded_by_residency(self):
        alloc = self.make(blocks=4)
        assert alloc.allocate("a", 40)       # 3 blocks
        assert alloc.evict_blocks("a", 10) == 3   # capped at resident count
        assert alloc.holds_resident_blocks("a") == 0
        with pytest.raises(ValueError):
            alloc.evict_blocks("a", 0)
        with pytest.raises(ValueError):
            alloc.evict_blocks("ghost", 1)
        with pytest.raises(ValueError):
            alloc.readmit("ghost")

    def test_readmit_is_all_or_nothing_when_pool_exhausted_mid_grant(self):
        """Satellite regression: a swap-in that cannot be granted in full
        must not leak partially-granted blocks — the pool is exhausted
        mid-grant and everything must come back side-effect free."""
        alloc = self.make(blocks=6)
        assert alloc.allocate("victim", 80)  # 5 blocks
        assert alloc.evict_blocks("victim", 4) == 4
        # Another owner takes 3 of the 5 free blocks: the victim's 4-block
        # readmission can only be half-granted, so it must not be at all.
        assert alloc.allocate("squatter", 48)
        free_before = alloc.pool.free_blocks
        assert not alloc.readmit("victim")
        assert alloc.pool.free_blocks == free_before
        assert alloc.holds_swapped_blocks("victim") == 4
        assert alloc.holds_resident_blocks("victim") == 1
        assert alloc.pool.swapped_blocks == 4
        # Once the squatter leaves, the same readmission succeeds whole.
        alloc.release("squatter")
        assert alloc.readmit("victim")
        assert alloc.holds_resident_blocks("victim") == 5

    def test_release_drops_host_staged_blocks_too(self):
        alloc = self.make(blocks=4)
        assert alloc.allocate("a", 50)       # 4 blocks
        assert alloc.evict_blocks("a", 2) == 2
        assert alloc.pool.swapped_blocks == 2
        assert alloc.release("a") == 50
        assert alloc.pool.free_blocks == 4
        assert alloc.pool.swapped_blocks == 0
        assert alloc.holds_blocks("a") == 0

    def test_grow_counts_staged_blocks_as_held(self):
        alloc = self.make(blocks=6)
        assert alloc.allocate("a", 64)       # 4 blocks
        assert alloc.evict_blocks("a", 2) == 2
        # Growing within the logically-held 4 blocks allocates nothing new.
        assert alloc.grow("a", 64)
        assert alloc.holds_resident_blocks("a") == 2
        assert alloc.grow("a", 65)           # 5th block: one fresh allocation
        assert alloc.holds_resident_blocks("a") == 3
        assert alloc.holds_blocks("a") == 5


def make_request(request_id, *, arrival=0.0, priority=1.0, last_token=None,
                 admitted=None):
    request = ServingRequest(
        request_id, Query(64, 64, arrival_time_s=arrival, priority=priority))
    request.last_token_time_s = last_token
    request.admitted_time_s = admitted
    return request


class TestPreemptionPolicy:
    def test_lru_evicts_stalest_then_latest_arrival(self):
        stale = make_request(0, last_token=1.0)
        fresh = make_request(1, last_token=5.0)
        assert PreemptionPolicy("lru").select_victim([fresh, stale], 6.0) is stale
        # Ties on last use break toward the later arrival, then larger id.
        a = make_request(0, arrival=0.0, last_token=2.0)
        b = make_request(1, arrival=1.0, last_token=2.0)
        assert PreemptionPolicy("lru").select_victim([a, b], 3.0) is b

    def test_lru_falls_back_to_admission_then_arrival(self):
        admitted = make_request(0, admitted=4.0)
        arrived = make_request(1, arrival=2.0)
        assert PreemptionPolicy("lru").select_victim([admitted, arrived], 5.0) \
            is arrived

    def test_priority_evicts_lowest_priority_first(self):
        high = make_request(0, priority=2.0, last_token=0.0)
        low = make_request(1, priority=0.5, last_token=9.0)
        assert PreemptionPolicy("priority").select_victim([high, low], 10.0) is low

    def test_sla_deadline_evicts_most_slack(self):
        early = make_request(0, arrival=0.0)
        late = make_request(1, arrival=5.0)
        policy = PreemptionPolicy("sla_deadline", sla_latency_s=10.0)
        # The later arrival's deadline is further out: it has the most slack.
        assert policy.select_victim([early, late], 7.0) is late

    def test_selection_is_deterministic(self):
        requests = [make_request(i, arrival=float(i % 3)) for i in range(6)]
        for name in PREEMPTION_POLICIES:
            policy = PreemptionPolicy(name, sla_latency_s=5.0)
            first = policy.select_victim(requests, 4.0)
            assert all(policy.select_victim(requests, 4.0) is first
                       for _ in range(5))

    def test_empty_candidates(self):
        assert PreemptionPolicy().select_victim([], 0.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PreemptionPolicy("random")
        with pytest.raises(ValueError):
            PreemptionPolicy(restore="teleport")
        with pytest.raises(ValueError):
            PreemptionPolicy(sla_latency_s=0.0)

    def test_partial_blocks_validation(self):
        assert PreemptionPolicy(partial_blocks=4).partial_blocks == 4
        assert PreemptionPolicy().partial_blocks is None
        with pytest.raises(ValueError):
            PreemptionPolicy(partial_blocks=0)
        with pytest.raises(ValueError, match="swap"):
            PreemptionPolicy(restore="recompute", partial_blocks=4)


class TestSwapPricing:
    def test_scales_with_bytes_and_floors_at_latency(self):
        small = kv_swap_time_s(2**20, CXL_3_0_LINK)
        large = kv_swap_time_s(2**30, CXL_3_0_LINK)
        assert 0 < small < large
        assert small > CXL_3_0_LINK.base_latency_ns * 1e-9
        assert kv_swap_time_s(0, CXL_3_0_LINK) == 0.0

    def test_pipeline_shards_stream_in_parallel_up_to_host_link(self):
        one = kv_swap_time_s(2**28, CXL_3_0_LINK, pp_stages=1)
        four = kv_swap_time_s(2**28, CXL_3_0_LINK, pp_stages=4)
        many = kv_swap_time_s(2**28, CXL_3_0_LINK, pp_stages=64)
        assert four < one
        # x16 host lanes bound 4 x4 device links exactly: more shards gain 0.
        assert many == pytest.approx(four)
        with pytest.raises(ValueError):
            kv_swap_time_s(-1, CXL_3_0_LINK)


class TestPagedAdmission:
    def test_unconstrained_pool_never_preempts(self, system, pp_plan):
        trace = with_arrivals(sharegpt_like_queries(30, seed=3),
                              poisson_arrivals(30, 40.0, seed=3))
        result = ServingEngine(system, pp_plan, admission="paged").run(trace)
        assert result.num_completed == 30
        assert result.num_preemptions == 0
        assert result.num_swap_outs == 0
        assert result.recompute_tokens == 0
        assert result.preemption_stall_time_s == 0.0

    def test_admits_beyond_reserve_capacity(self, system, pp_plan, profile):
        # Capacity for ~2 full contexts: reserve holds 2 requests in flight,
        # paged admits on the (half-sized) prompt and runs more concurrently.
        trace = fixed_queries(8, prompt_tokens=256, decode_tokens=256)
        capacity = tight_capacity(profile, 2.2, 512)
        reserve = ServingEngine(system, pp_plan,
                                memory_capacity_bytes=capacity).run(trace)
        paged = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                              admission="paged").run(trace)
        assert paged.num_completed == reserve.num_completed == 8
        assert paged.num_preemptions > 0
        assert paged.makespan_s < reserve.makespan_s
        assert paged.peak_memory_bytes <= capacity
        assert reserve.peak_memory_bytes <= capacity

    def test_swap_counters_balance(self, system, pp_plan, profile):
        trace = fixed_queries(8, prompt_tokens=256, decode_tokens=256)
        capacity = tight_capacity(profile, 2.2, 512)
        result = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                               admission="paged",
                               preemption_restore="swap").run(trace)
        assert result.num_preemptions > 0
        # Every victim swapped out exactly once per eviction and back in
        # once per resume; the run drains, so the two balance.
        assert result.num_swap_outs == result.num_preemptions
        assert result.num_swap_ins == result.num_swap_outs
        assert result.swap_time_s > 0
        assert result.recompute_tokens == 0
        assert result.preemption_stall_time_s > 0

    def test_recompute_restores_via_prefill(self, system, pp_plan, profile):
        trace = fixed_queries(8, prompt_tokens=256, decode_tokens=256)
        capacity = tight_capacity(profile, 2.2, 512)
        swap = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                             admission="paged", preemption_restore="swap").run(trace)
        recompute = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                                  admission="paged",
                                  preemption_restore="recompute").run(trace)
        assert recompute.num_preemptions > 0
        assert recompute.recompute_tokens > 0
        assert recompute.num_swap_outs == 0
        assert recompute.swap_time_s == 0.0
        # Re-prefilling burns engine time that swapping avoids.
        assert recompute.prefill_time_s > swap.prefill_time_s
        assert recompute.makespan_s > swap.makespan_s
        # Stall counts eviction-to-decode-ready, so the rebuild span makes
        # recompute's stall exceed swap's (whose transfer is link-fast).
        assert recompute.preemption_stall_time_s > swap.preemption_stall_time_s

    def test_oversized_request_rejected_in_paged_mode(self, system, pp_plan, profile):
        capacity = tight_capacity(profile, 1.2, 512)
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                               admission="paged")
        big = Query(prompt_tokens=700, decode_tokens=700)   # needs ~2.7 contexts
        small = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        result = engine.run([big] + small)
        assert result.num_rejected == 1
        assert result.num_completed == 4

    def test_priority_policy_evicts_low_priority_first(self, system, pp_plan,
                                                       profile):
        # Small prompts so all eight admit before the pool runs dry, then
        # decode growth forces evictions among a fully mixed running batch.
        trace = [Query(64, 448, priority=2.0 if i % 2 == 0 else 0.5)
                 for i in range(8)]
        capacity = tight_capacity(profile, 2.2, 512)
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                               admission="paged", preemption_policy="priority")
        run = engine.simulate(trace)
        assert run.preemption_log
        expendable_ids = {r.request_id for r in run.requests
                          if r.query.priority < 1.0}
        first_victims = [rid for _, rid in run.preemption_log[:4]]
        assert set(first_victims) <= expendable_ids
        # Low-priority requests bear at least as many evictions overall.
        low = sum(1 for _, rid in run.preemption_log if rid in expendable_ids)
        high = len(run.preemption_log) - low
        assert low >= high

    def test_peak_memory_stays_within_capacity_at_low_occupancy(self, small_model,
                                                                profile):
        # The pool's effective capacity exceeds the raw budget at
        # kv_occupancy < 1; the *reported* memory applies the same discount
        # the reserve path does, so peak <= capacity remains invariant.
        config = CentConfig(num_devices=4, context_samples=2, kv_occupancy=0.8)
        system = CentSystem(config, small_model)
        plan = PipelineParallel(4, small_model)
        capacity = tight_capacity(profile, 2.2, 512)
        trace = fixed_queries(8, prompt_tokens=256, decode_tokens=256)
        result = ServingEngine(system, plan, memory_capacity_bytes=capacity,
                               admission="paged").run(trace)
        assert result.num_completed == 8
        assert result.peak_memory_bytes <= capacity

    def test_midprefill_recompute_victim_rebuilds_prefix(self, system, pp_plan,
                                                         profile):
        # Chunked-prefill mode lets decode growth evict a request whose
        # prompt is still streaming.  The pool is sized in whole blocks —
        # two small prompts (4 blocks each), the long prompt (24) and 3
        # spare — so the decoders' block growth exhausts it while the long
        # prompt (the LRU-stalest request) is still prefilling; recompute
        # must rebuild exactly its lost prefix and then finish the prompt.
        bpt = profile.kv_cache_bytes_per_token()
        capacity = profile.parameter_bytes + (8 + 24 + 3) * 16 * bpt
        trace = [Query(64, 448), Query(64, 448), Query(384, 64)]

        def build():
            return ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                                 admission="paged",
                                 preemption_restore="recompute",
                                 interleave_prefill=True, prefill_chunk_tokens=16)

        run = build().simulate(trace)
        long_prompt = run.requests[-1]
        assert all(r.state is RequestState.FINISHED for r in run.requests)
        assert long_prompt.preempted_count == 1
        # Evicted mid-prefill: the redone work is the streamed prefix, not
        # the whole prompt (and certainly not a decode-stage context).
        assert 0 < long_prompt.recompute_tokens < long_prompt.query.prompt_tokens
        # The rebuild span counts toward eviction-to-ready stall.
        assert long_prompt.stall_s > 0
        assert run.preemption_log[0][1] == long_prompt.request_id
        assert build().simulate(trace).preemption_log == run.preemption_log

    def test_estimated_capacity_is_admission_aware(self, system, pp_plan,
                                                   profile):
        """Satellite regression: paged admission books the *current*
        context, so a memory-tight paged replica sustains more concurrency
        than a full-context reservation — the capacity estimate (and
        through it the cluster placer's ``_capability_cache``) must see
        that instead of under-sizing paged replicas with reserve math."""
        trace = fixed_queries(16, prompt_tokens=64, decode_tokens=448)
        capacity = tight_capacity(profile, 2.2, 512)
        reserve = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity)
        paged = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                              admission="paged")
        assert paged.estimated_capacity_qps(trace) > \
            reserve.estimated_capacity_qps(trace)

    def test_invalid_knobs(self, system, pp_plan):
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan, admission="optimistic")
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan, kv_block_tokens=0)
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan, preemption_policy="random")
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan, preemption_restore="teleport")
        assert ADMISSION_MODES == ("reserve", "paged")
        assert set(RESTORE_MODES) == {"swap", "recompute"}


class TestPartialEviction:
    """Block-granular swap: evict cold prefix blocks, not whole requests."""

    @pytest.fixture(scope="class")
    def slow_system(self, small_model):
        # A slow fabric makes the KV transfer, not the engine iteration,
        # the dominant restore cost — the regime block-granular swap is for.
        from repro.cxl.link import CxlLinkParameters
        link = CxlLinkParameters(lane_bandwidth_gbps=0.05)
        config = CentConfig(num_devices=4, context_samples=2, link=link)
        return CentSystem(config, small_model)

    def transient_trace(self):
        # One big low-priority decoder; two short interactive requests
        # force a transient squeeze of a few blocks, then recede.
        return [Query(624, 160, priority=0.5),
                Query(64, 64, priority=2.0),
                Query(64, 64, priority=2.0)]

    def build(self, slow_system, pp_plan, profile, partial):
        bpt = profile.kv_cache_bytes_per_token()
        capacity = int(profile.parameter_bytes + 50 * 16 * bpt)
        return ServingEngine(slow_system, pp_plan, memory_capacity_bytes=capacity,
                             admission="paged", preemption_policy="priority",
                             preemption_restore="swap",
                             preemption_partial_blocks=partial)

    def test_partial_eviction_stages_fewer_bytes_and_finishes_sooner(
            self, slow_system, pp_plan, profile):
        trace = self.transient_trace()
        full = self.build(slow_system, pp_plan, profile, None).run(trace)
        part = self.build(slow_system, pp_plan, profile, 2).run(trace)
        assert full.num_completed == part.num_completed == 3
        assert full.num_partial_evictions == 0
        assert part.num_partial_evictions > 0
        assert part.num_preemptions == part.num_partial_evictions
        # A 2-block bite never pays a whole-context transfer, so the total
        # staged volume (and its CXL time) shrinks...
        assert part.swap_time_s < full.swap_time_s
        # ... and the transient squeeze no longer costs a big-request
        # round trip: the run drains strictly sooner.
        assert part.makespan_s < full.makespan_s

    def test_partially_resident_victim_readmits_and_finishes(
            self, slow_system, pp_plan, profile):
        run = self.build(slow_system, pp_plan, profile, 2).simulate(
            self.transient_trace())
        assert all(r.state is RequestState.FINISHED for r in run.requests)
        victims = [r for r in run.requests if r.partial_evictions]
        assert victims
        for victim in victims:
            # Every staged bite came back: the allocation is whole again
            # (and was released on completion).
            assert victim.swapped_kv_blocks == 0
            assert victim.num_swap_ins >= 1
            assert victim.stall_s > 0

    def test_pool_conserved_through_partial_eviction(self, slow_system,
                                                     pp_plan, profile):
        engine = self.build(slow_system, pp_plan, profile, 2)
        state = engine.begin(self.transient_trace())
        while not state.drained:
            engine.advance(state, until_s=state.clock + 0.01)
            pool = state.allocator.pool
            assert pool.free_blocks + pool.used_blocks == pool.num_blocks
            assert pool.swapped_blocks >= 0
        pool = state.allocator.pool
        # Drained: nothing resident, nothing staged in host memory.
        assert pool.free_blocks == pool.num_blocks
        assert pool.swapped_blocks == 0

    def test_partial_eviction_is_deterministic(self, slow_system, pp_plan,
                                               profile):
        trace = self.transient_trace()
        first = self.build(slow_system, pp_plan, profile, 2).simulate(trace)
        again = self.build(slow_system, pp_plan, profile, 2).simulate(trace)
        assert first.preemption_log
        assert again.preemption_log == first.preemption_log

    def test_partial_knob_rejected_with_recompute(self, system, pp_plan):
        with pytest.raises(ValueError, match="swap"):
            ServingEngine(system, pp_plan, admission="paged",
                          preemption_restore="recompute",
                          preemption_partial_blocks=4)
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan, admission="paged",
                          preemption_partial_blocks=-1)


class TestPreemptionDeterminism:
    @pytest.mark.parametrize("restore", RESTORE_MODES)
    def test_same_trace_same_victims_and_result(self, system, pp_plan, profile,
                                                restore):
        queries = sharegpt_like_queries(30, seed=13)
        trace = with_arrivals(queries, poisson_arrivals(30, 100.0, seed=13))
        capacity = tight_capacity(profile, 2.2,
                                  max(q.total_context for q in queries))

        def build():
            return ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                                 admission="paged", preemption_restore=restore)

        engine = build()
        first = engine.simulate(trace)
        again = engine.simulate(trace)        # warm engine, same trace
        fresh = build().simulate(trace)       # fresh engine instance
        assert first.preemption_log           # the scenario does preempt
        assert again.preemption_log == first.preemption_log
        assert fresh.preemption_log == first.preemption_log
        results = [ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                                 admission="paged", preemption_restore=restore)
                   .run(trace, sla_latency_s=2.0) for _ in range(2)]
        assert results[0] == results[1]

    def test_different_seeds_diverge(self, system, pp_plan, profile):
        queries = sharegpt_like_queries(30, seed=13)
        capacity = tight_capacity(profile, 2.2,
                                  max(q.total_context for q in queries))
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                               admission="paged")
        one = engine.simulate(with_arrivals(
            queries, poisson_arrivals(30, 100.0, seed=13)))
        other = engine.simulate(with_arrivals(
            queries, poisson_arrivals(30, 100.0, seed=14)))
        assert one.preemption_log != other.preemption_log


class TestReserveRegression:
    def test_default_admission_is_reserve_with_zero_counters(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        assert engine.admission == "reserve"
        trace = with_arrivals(sharegpt_like_queries(20, seed=5),
                              poisson_arrivals(20, 50.0, seed=5))
        result = engine.run(trace, sla_latency_s=2.0)
        explicit = ServingEngine(system, pp_plan, admission="reserve") \
            .run(trace, sla_latency_s=2.0)
        assert result == explicit
        assert result.num_preemptions == 0
        assert result.num_swap_outs == result.num_swap_ins == 0
        assert result.swap_time_s == 0.0
        assert result.recompute_tokens == 0
        assert result.preemption_stall_time_s == 0.0

    def test_reserve_ignores_paged_knobs(self, system, pp_plan, profile):
        # Paged-only knobs must not perturb the legacy path's numbers.
        trace = fixed_queries(6, prompt_tokens=128, decode_tokens=64)
        capacity = tight_capacity(profile, 3.0, 192)
        base = ServingEngine(system, pp_plan,
                             memory_capacity_bytes=capacity).run(trace)
        tweaked = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                                kv_block_tokens=64,
                                preemption_policy="sla_deadline",
                                preemption_restore="recompute").run(trace)
        assert base == tweaked


class TestQueueDepthTimeline:
    def test_recorded_in_reserve_mode(self, system, pp_plan):
        trace = with_arrivals(sharegpt_like_queries(20, seed=5),
                              poisson_arrivals(20, 50.0, seed=5))
        result = ServingEngine(system, pp_plan).run(trace)
        assert result.queue_depth_timeline
        times = [t for t, _, _ in result.queue_depth_timeline]
        assert times == sorted(times)
        assert all(queued >= 0 and running >= 0
                   for _, queued, running in result.queue_depth_timeline)
        assert result.peak_queue_depth >= 0
        assert result.mean_queue_depth >= 0.0

    def test_backlog_visible_under_pressure(self, system, pp_plan):
        # One slot, four simultaneous arrivals: the router-facing backlog
        # signal must see the three queued requests.
        engine = ServingEngine(system, pp_plan, max_batch_size=1)
        result = engine.run(fixed_queries(4, prompt_tokens=128, decode_tokens=64))
        assert result.peak_queue_depth == 3
        assert result.mean_queue_depth > 0.0

    def test_counts_preempted_requests_as_queued(self, system, pp_plan, profile):
        trace = fixed_queries(8, prompt_tokens=256, decode_tokens=256)
        capacity = tight_capacity(profile, 2.2, 512)
        result = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity,
                               admission="paged").run(trace)
        assert result.num_preemptions > 0
        # After the initial admissions drain the waiting queue, evicted
        # requests keep the backlog signal non-zero.
        assert result.peak_queue_depth > 0

    def test_merge_sums_concurrent_replica_backlogs(self):
        from repro.serving import merge_queue_depth_timelines

        a = [(0.0, 5, 1), (2.0, 3, 1)]
        b = [(1.0, 5, 2), (3.0, 0, 2)]
        merged = merge_queue_depth_timelines([a, b])
        # Two replicas each queueing 5 is a pool backlog of 10, not 5.
        assert merged == [(0.0, 5, 1), (1.0, 10, 3), (2.0, 8, 3), (3.0, 3, 3)]
        # A single replica passes through untouched (engine parity).
        assert merge_queue_depth_timelines([a]) == a
        assert merge_queue_depth_timelines([]) == []
        assert merge_queue_depth_timelines([[], b]) == b

    def test_mean_queue_depth_math(self):
        result = dataclasses.replace(
            ServingResult(model_name="m", plan_name="p", num_requests=1,
                          num_completed=1, num_rejected=0, makespan_s=4.0),
            queue_depth_timeline=((0.0, 2, 1), (2.0, 0, 1)),
        )
        # Two queued for the first 2 s, zero for the last 2 s.
        assert result.mean_queue_depth == pytest.approx(1.0)
        assert result.peak_queue_depth == 2
        empty = ServingResult(model_name="m", plan_name="p", num_requests=0,
                              num_completed=0, num_rejected=0, makespan_s=0.0)
        assert empty.mean_queue_depth == 0.0
        assert empty.peak_queue_depth == 0


class TestOverloadAcceptance:
    def test_paged_beats_reserve_goodput_under_overload(self, small_model):
        """Acceptance: on an overloaded memory-tight deployment where the
        reserve path queues heavily, paged admission with preemption wins
        SLA goodput strictly."""
        study = overload_preemption_study(
            model=small_model, num_devices=4, num_queries=40,
            context_samples=2, context_step=256,
            kv_capacity_queries=2.2, overload=3.0)
        by_mode = {row["mode"]: row for row in study["rows"]}
        reserve = by_mode["reserve"]
        # The reserve path queues under this load (no silent easy regime).
        assert reserve["peak_queue_depth"] > 0
        assert reserve["sla_violation_fraction"] > 0
        assert reserve["num_preemptions"] == 0
        paged = [row for mode, row in by_mode.items() if mode != "reserve"]
        assert len(paged) == len(RESTORE_MODES)
        for row in paged:
            assert row["num_preemptions"] > 0
            assert row["goodput_tokens_per_s"] > reserve["goodput_tokens_per_s"]
        assert study["best_mode"] != "reserve"


class TestClusterPropagation:
    def test_preemption_counters_reach_cluster_result(self, small_model):
        from repro.cluster.tenant import TenantSpec

        config = CentConfig(num_devices=4, context_samples=2)
        system = CentSystem(config, small_model)
        trace = with_arrivals(sharegpt_like_queries(16, seed=2),
                              poisson_arrivals(16, 30.0, seed=2))
        result = system.serve_cluster(
            [TenantSpec("only", trace=trace, sla_latency_s=5.0)],
            admission="paged",
        )
        tenant = result.tenant_results["only"]
        assert tenant.num_completed == 16
        # The replica ran paged; counters and the backlog timeline propagate.
        assert tenant.queue_depth_timeline
        assert tenant.num_preemptions >= 0
        assert result.total_preemptions == tenant.num_preemptions
        assert result.total_swap_time_s == tenant.swap_time_s
        assert result.total_preemption_stall_s == tenant.preemption_stall_time_s

    def test_replica_sla_is_strictest_member_slo(self, small_model):
        from repro.cluster.engine import ClusterEngine
        from repro.cluster.placement import ReplicaSpec
        from repro.cluster.tenant import TenantSpec

        trace = fixed_queries(4, prompt_tokens=64, decode_tokens=32)
        tight = TenantSpec("tight", trace=trace, sla_latency_s=2.0)
        loose = TenantSpec("loose", trace=trace, sla_latency_s=30.0)
        engine = ClusterEngine(CentConfig(num_devices=4, context_samples=2),
                               [tight, loose], default_model=small_model)
        shared = ReplicaSpec(replica_id=0, tenant_names=("tight", "loose"),
                             model=small_model, num_devices=2, first_device=0)
        # The sla_deadline preemption policy judges slack on a time-shared
        # replica against its strictest member tenant's SLO.
        assert engine._replica_sla_s(shared) == 2.0
        solo = ReplicaSpec(replica_id=1, tenant_names=("loose",),
                           model=small_model, num_devices=2, first_device=2)
        assert engine._replica_sla_s(solo) == 30.0
