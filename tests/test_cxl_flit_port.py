"""Unit tests for the CXL flit and port models."""

import pytest

from repro.cxl.flit import (
    FLIT_PAYLOAD_BYTES,
    Flit,
    FlitType,
    HeaderSlotCode,
    PBR_FLIT_BYTES,
    flits_for_payload,
)
from repro.cxl.port import ChannelName, CxlPort, VirtualChannel


class TestFlit:
    def test_sizes(self):
        assert PBR_FLIT_BYTES == 256
        assert FLIT_PAYLOAD_BYTES < PBR_FLIT_BYTES

    def test_unicast_destination(self):
        flit = Flit(FlitType.REQUEST_WITH_DATA, source_device=0, destination_device=5,
                    payload_bytes=64)
        assert flit.destinations == (5,)
        assert flit.expects_acknowledgements == 1

    def test_broadcast_mask_decoding(self):
        flit = Flit(FlitType.REQUEST_WITH_DATA, source_device=0,
                    header_code=HeaderSlotCode.BROADCAST,
                    device_id_mask=0b1011, payload_bytes=16)
        assert flit.destinations == (0, 1, 3)
        assert flit.expects_acknowledgements == 3

    def test_read_request_expects_no_write_ack(self):
        flit = Flit(FlitType.REQUEST, source_device=1, destination_device=2)
        assert flit.expects_acknowledgements == 0

    def test_unicast_with_mask_rejected(self):
        with pytest.raises(ValueError):
            Flit(FlitType.REQUEST, source_device=0, destination_device=1, device_id_mask=3)

    def test_broadcast_without_mask_rejected(self):
        with pytest.raises(ValueError):
            Flit(FlitType.REQUEST, source_device=0, header_code=HeaderSlotCode.BROADCAST)

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Flit(FlitType.REQUEST_WITH_DATA, source_device=0, destination_device=1,
                 payload_bytes=PBR_FLIT_BYTES + 1)

    def test_flits_for_payload(self):
        assert flits_for_payload(0) == 1
        assert flits_for_payload(FLIT_PAYLOAD_BYTES) == 1
        assert flits_for_payload(FLIT_PAYLOAD_BYTES + 1) == 2
        assert flits_for_payload(16 * 1024) == -(-16 * 1024 // FLIT_PAYLOAD_BYTES)
        with pytest.raises(ValueError):
            flits_for_payload(-1)


class TestPort:
    def test_transmit_and_drain(self):
        port = CxlPort(device_id=0)
        flit = Flit(FlitType.REQUEST_WITH_DATA, source_device=0, destination_device=1,
                    payload_bytes=32)
        port.transmit(flit)
        assert port.flits_transmitted == 1
        drained = port.drain_tx()
        assert drained == [flit]
        assert port.drain_tx() == []

    def test_transmit_foreign_flit_rejected(self):
        port = CxlPort(device_id=0)
        with pytest.raises(ValueError):
            port.transmit(Flit(FlitType.REQUEST, source_device=3, destination_device=0))

    def test_receive_routes_to_virtual_channels(self):
        port = CxlPort(device_id=1)
        from_remote = Flit(FlitType.REQUEST_WITH_DATA, source_device=0,
                           destination_device=1, payload_bytes=8)
        from_host = Flit(FlitType.REQUEST_WITH_DATA, source_device=1,
                         destination_device=1, payload_bytes=8)
        port.receive(from_remote)
        port.receive(from_host, from_host=True)
        assert port.pending(ChannelName.RX_R2L_RWD) == 1
        assert port.pending(ChannelName.RX_H2L_RWD) == 1
        assert port.flits_received == 2

    def test_acknowledgement_lands_on_ndr_channel(self):
        port = CxlPort(device_id=2)
        ack = Flit(FlitType.NO_DATA_RESPONSE, source_device=5, destination_device=2)
        port.receive(ack)
        assert port.pending(ChannelName.RX_R2L_NDR) == 1
        assert port.pop(ChannelName.RX_R2L_NDR) is ack

    def test_virtual_channel_overflow(self):
        channel = VirtualChannel(ChannelName.RX_R2L_RWD, capacity=1)
        flit = Flit(FlitType.REQUEST, source_device=0, destination_device=1)
        channel.push(flit)
        with pytest.raises(RuntimeError):
            channel.push(flit)

    def test_empty_channel_pop_returns_none(self):
        channel = VirtualChannel(ChannelName.TX_L2H_DRS)
        assert channel.pop() is None
