"""Unit tests for the lookup-table activation functions."""

import numpy as np
import pytest

from repro.numerics.lut import AF_TABLE_IDS, ActivationLUT, gelu, sigmoid, silu


class TestReferenceFunctions:
    def test_sigmoid_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_saturation(self):
        assert sigmoid(np.array([20.0]))[0] == pytest.approx(1.0, abs=1e-6)
        assert sigmoid(np.array([-20.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_silu_is_x_times_sigmoid(self):
        x = np.linspace(-4, 4, 17).astype(np.float32)
        assert np.allclose(silu(x), x * sigmoid(x), atol=1e-6)

    def test_gelu_zero(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_gelu_positive_large(self):
        assert gelu(np.array([6.0]))[0] == pytest.approx(6.0, rel=1e-3)


class TestActivationLUT:
    @pytest.mark.parametrize("function", sorted(AF_TABLE_IDS))
    def test_lut_error_bounded(self, function):
        lut = ActivationLUT(function, num_entries=256, input_range=8.0)
        if function == "exp":
            # exp grows to ~3000 over the range; use relative error instead.
            samples = np.linspace(-8, 8, 500).astype(np.float32)
            relative = np.abs(lut.evaluate(samples) - np.exp(samples)) / np.exp(samples)
            assert np.median(relative) < 0.05
        else:
            assert lut.max_error() < 0.05

    def test_af_id_matches_registry(self):
        for function, af_id in AF_TABLE_IDS.items():
            assert ActivationLUT(function).af_id == af_id

    def test_inputs_clamped(self):
        lut = ActivationLUT("sigmoid", input_range=4.0)
        inside = lut.evaluate(np.array([4.0], dtype=np.float32))
        outside = lut.evaluate(np.array([100.0], dtype=np.float32))
        assert inside[0] == outside[0]

    def test_more_entries_more_accurate(self):
        coarse = ActivationLUT("silu", num_entries=32).max_error()
        fine = ActivationLUT("silu", num_entries=512).max_error()
        assert fine <= coarse

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            ActivationLUT("swishish")

    def test_too_few_entries_rejected(self):
        with pytest.raises(ValueError):
            ActivationLUT("sigmoid", num_entries=1)

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            ActivationLUT("sigmoid", input_range=0.0)
