"""Unit tests for the PIM channel timing model (instruction execution)."""

import pytest

from repro.dram.commands import CommandType
from repro.isa.instructions import (
    ActivationFunction,
    CopyBankToGlobalBuffer,
    ElementwiseMul,
    Exponent,
    MacAllBank,
    ReadMacRegister,
    ReadSingleBank,
    WriteAllBanks,
    WriteBias,
    WriteGlobalBuffer,
    WriteSingleBank,
)
from repro.pim.channel import PIMChannel


@pytest.fixture
def channel() -> PIMChannel:
    return PIMChannel(channel_id=0)


class TestMacExecution:
    def test_single_mac_instruction_latency(self, channel):
        latency = channel.execute(MacAllBank(ch_mask=1, op_size=64, row=0, column=0))
        # One ACTab (tRCD) + 64 MACs at 1 ns + CAS/burst completion.
        assert latency >= 64.0
        assert latency < 200.0

    def test_sustained_mac_rate(self, channel):
        # A long burst amortises the activation overhead.  MACab commands
        # pipeline at the 1 ns PU clock; the per-row activate/precharge
        # overhead keeps the sustained rate between 1 and 2 ns per all-bank
        # MAC micro-op (roughly 50-65% of the 512 GB/s channel peak).
        op_size = 64
        rows = 64
        total = 0.0
        for row in range(rows):
            total += channel.execute(MacAllBank(ch_mask=1, op_size=op_size, row=row))
        per_mac = total / (rows * op_size)
        assert 1.0 <= per_mac <= 2.0

    def test_same_row_reuses_activation(self, channel):
        first = channel.execute(MacAllBank(ch_mask=1, op_size=8, row=0, column=0))
        second = channel.execute(MacAllBank(ch_mask=1, op_size=8, row=0, column=8))
        assert second < first  # no second ACTab

    def test_row_switch_precharges(self, channel):
        channel.execute(MacAllBank(ch_mask=1, op_size=8, row=0))
        channel.execute(MacAllBank(ch_mask=1, op_size=8, row=1))
        assert channel.dram.stats.count(CommandType.PRE_ALL) >= 1
        assert channel.dram.stats.count(CommandType.ACT_ALL) == 2

    def test_mac_micro_ops_counted(self, channel):
        channel.execute(MacAllBank(ch_mask=1, op_size=32, row=0))
        assert channel.stats.mac_micro_ops == 32
        assert channel.dram.stats.count(CommandType.MAC_ALL) == 32


class TestOtherInstructions:
    def test_elementwise_mul_uses_bank_groups(self, channel):
        channel.execute(ElementwiseMul(ch_mask=1, op_size=4, row=0))
        assert channel.dram.stats.count(CommandType.EWMUL) == 16  # 4 groups x 4 ops

    def test_activation_instruction(self, channel):
        latency = channel.execute(ActivationFunction(ch_mask=1, af_id=0, reg_id=0))
        assert latency > 0

    def test_single_bank_write_and_read(self, channel):
        channel.execute(WriteSingleBank(ch_id=0, op_size=4, bank=2, row=1, column=0, rs=0))
        channel.execute(ReadSingleBank(ch_id=0, op_size=4, bank=2, row=1, column=4, rd=0))
        assert channel.dram.stats.count(CommandType.WR) == 4
        assert channel.dram.stats.count(CommandType.RD) == 4
        assert channel.stats.shared_buffer_transfers == 8

    def test_write_all_banks_touches_every_bank(self, channel):
        channel.execute(WriteAllBanks(ch_id=0, row=0, column=0, rs=0))
        assert channel.dram.stats.count(CommandType.WR) == channel.geometry.num_banks

    def test_copy_bank_to_global_buffer(self, channel):
        channel.execute(CopyBankToGlobalBuffer(ch_mask=1, op_size=8, row=0))
        assert channel.dram.stats.count(CommandType.RD) == 8

    def test_register_io_counts_transfers(self, channel):
        channel.execute(WriteBias(ch_mask=1, rs=0))
        channel.execute(ReadMacRegister(ch_mask=1, rd=0, reg_id=0))
        assert channel.stats.shared_buffer_transfers == 2

    def test_write_global_buffer_streams_slots(self, channel):
        latency = channel.execute(WriteGlobalBuffer(ch_mask=1, op_size=64, column=0, rs=0))
        assert latency == pytest.approx(64 * channel.timing.t_ccd_s)
        assert channel.stats.global_buffer_writes == 64

    def test_pnm_instruction_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.execute(Exponent(op_size=1, rd=0, rs=0))

    def test_execute_program_accumulates(self, channel):
        program = [
            WriteGlobalBuffer(ch_mask=1, op_size=4, column=0, rs=0),
            WriteBias(ch_mask=1, rs=0),
            MacAllBank(ch_mask=1, op_size=4, row=0, column=0),
            ReadMacRegister(ch_mask=1, rd=0, reg_id=0),
        ]
        latency = channel.execute_program(program)
        assert latency == pytest.approx(channel.busy_until_ns)
        assert latency > 0

    def test_close_row_precharges(self, channel):
        channel.execute(MacAllBank(ch_mask=1, op_size=4, row=0))
        channel.close_row()
        assert channel.dram.stats.count(CommandType.PRE_ALL) == 1

    def test_reset_timing_clears_clock(self, channel):
        channel.execute(MacAllBank(ch_mask=1, op_size=4, row=0))
        channel.reset_timing()
        assert channel.busy_until_ns == 0.0
        assert channel.stats.mac_micro_ops == 4  # statistics survive

    def test_peak_rates_match_paper(self, channel):
        assert channel.peak_internal_bandwidth_gbps() == pytest.approx(512.0)
        assert channel.peak_compute_gflops() == pytest.approx(512.0)
