"""Unit tests for model configurations and memory sizing."""

import dataclasses

import pytest

from repro.models.config import (
    GPT3_175B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    MODEL_REGISTRY,
    OPT_66B,
    AttentionKind,
    FfnKind,
    ModelConfig,
)
from repro.models.memory import BYTES_PER_PARAM_BF16, ModelMemoryProfile


class TestParameterCounts:
    @pytest.mark.parametrize("model, billions", [
        (LLAMA2_7B, 6.7), (LLAMA2_13B, 13.0), (LLAMA2_70B, 69.0),
        (OPT_66B, 66.0), (GPT3_175B, 175.0),
    ])
    def test_total_params_close_to_published(self, model, billions):
        assert model.total_params == pytest.approx(billions * 1e9, rel=0.12)

    def test_head_dim(self):
        assert LLAMA2_70B.head_dim == 128
        assert LLAMA2_7B.head_dim == 128

    def test_llama70b_uses_gqa(self):
        assert LLAMA2_70B.attention_kind is AttentionKind.GROUPED_QUERY
        assert LLAMA2_70B.gqa_group_size == 8
        assert LLAMA2_70B.kv_dim == 1024

    def test_llama7b_uses_mha(self):
        assert LLAMA2_7B.attention_kind is AttentionKind.MULTI_HEAD
        assert LLAMA2_7B.gqa_group_size == 1

    def test_ffn_kinds(self):
        assert LLAMA2_70B.ffn_kind is FfnKind.GATED
        assert GPT3_175B.ffn_kind is FfnKind.STANDARD

    def test_registry(self):
        assert MODEL_REGISTRY["Llama2-70B"] is LLAMA2_70B
        assert len(MODEL_REGISTRY) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", num_layers=0, d_model=64, num_heads=4, num_kv_heads=2,
                        d_ff=128, vocab_size=100, max_context=64)
        with pytest.raises(ValueError):
            ModelConfig("bad", num_layers=2, d_model=65, num_heads=4, num_kv_heads=2,
                        d_ff=128, vocab_size=100, max_context=64)
        with pytest.raises(ValueError):
            ModelConfig("bad", num_layers=2, d_model=64, num_heads=4, num_kv_heads=3,
                        d_ff=128, vocab_size=100, max_context=64)

    def test_decode_flops_grow_with_context(self):
        assert (LLAMA2_7B.decode_flops_per_token(4096)
                > LLAMA2_7B.decode_flops_per_token(1024))


class TestMemoryProfile:
    def test_llama70b_weights_about_140_gb(self):
        profile = ModelMemoryProfile(LLAMA2_70B)
        assert profile.parameter_bytes == pytest.approx(138e9, rel=0.06)

    def test_kv_cache_per_token_llama70b(self):
        # 2 (K,V) x 80 layers x 1024 kv_dim x 2 bytes = 320 KiB per token.
        profile = ModelMemoryProfile(LLAMA2_70B)
        assert profile.kv_cache_bytes_per_token() == 2 * 80 * 1024 * 2

    def test_gqa_shrinks_kv_cache(self):
        assert (ModelMemoryProfile(LLAMA2_70B).kv_cache_bytes_per_token()
                < 4 * ModelMemoryProfile(LLAMA2_7B).kv_cache_bytes_per_token())

    def test_block_bytes_partition_totals(self):
        profile = ModelMemoryProfile(LLAMA2_7B)
        per_block = profile.block_bytes(batch_size=4, context_length=1024)
        total = profile.total_bytes(batch_size=4, context_length=1024)
        assert per_block * LLAMA2_7B.num_layers <= total

    def test_per_block_kv_bytes_round_up_not_down(self):
        # Regression: the per-block KV share used floor division, which
        # undercounts whenever the per-query total does not divide evenly
        # across the layers; capacity checks built on the per-block figure
        # must never see less than the true total.
        class OddKvModel(type(LLAMA2_7B)):
            def kv_cache_bytes_per_token(self, bytes_per_element=2):
                # One byte of per-token metadata breaks divisibility.
                return super().kv_cache_bytes_per_token(bytes_per_element) + 1

        odd = OddKvModel(**{f.name: getattr(LLAMA2_7B, f.name)
                            for f in dataclasses.fields(LLAMA2_7B)})
        profile = ModelMemoryProfile(odd)
        context = 1023  # 1023 * (per_token + 1) is not a multiple of 32
        total = profile.kv_cache_bytes_per_query(context)
        per_block = profile.kv_cache_bytes_per_block_per_query(context)
        assert total % odd.num_layers != 0  # the case floor division loses
        assert per_block * odd.num_layers >= total
        assert per_block == -(-total // odd.num_layers)

    def test_per_block_kv_bytes_exact_when_divisible(self):
        # The derived KV size of the stock models is a multiple of the layer
        # count, so rounding up must not change their per-block share.
        profile = ModelMemoryProfile(LLAMA2_70B)
        total = profile.kv_cache_bytes_per_query(4096)
        per_block = profile.kv_cache_bytes_per_block_per_query(4096)
        assert total % LLAMA2_70B.num_layers == 0
        assert per_block * LLAMA2_70B.num_layers == total

    def test_max_batch_size_decreases_with_context(self):
        profile = ModelMemoryProfile(LLAMA2_70B)
        memory = 4 * 80 * 1024**3
        assert (profile.max_batch_size(memory, 4096)
                > profile.max_batch_size(memory, 32768))

    def test_figure1_memory_requirement_shape(self):
        # Llama2-70B at 4K context and batch 128 exceeds 320 GB of GPU memory
        # only slightly; batch 256 clearly exceeds it (Figure 1).
        profile = ModelMemoryProfile(LLAMA2_70B)
        gpu_memory = 4 * 80 * 1024**3
        assert profile.total_bytes(64, 4096) < gpu_memory
        assert profile.total_bytes(256, 4096) > gpu_memory

    def test_bytes_per_param(self):
        assert BYTES_PER_PARAM_BF16 == 2

    def test_zero_budget_rejected(self):
        profile = ModelMemoryProfile(LLAMA2_7B)
        assert profile.max_batch_size(profile.parameter_bytes, 4096) == 0

    def test_invalid_inputs_rejected(self):
        profile = ModelMemoryProfile(LLAMA2_7B)
        with pytest.raises(ValueError):
            profile.kv_cache_bytes_per_query(0)
        with pytest.raises(ValueError):
            profile.total_bytes(0, 128)
