"""Unit tests for the evaluation harness (report helpers and fast experiments).

The heavyweight experiments (Figures 13-19) are exercised by the benchmark
suite; here we cover the report formatting and the experiments that do not
require full CENT simulations, plus a scaled-down end-to-end sanity run of
the speedup pipeline.
"""

import pytest

from repro.evaluation import (
    figure1_gpu_throughput,
    figure2_gpu_utilization,
    figure12_controller_cost,
    figure15b_gpu_throttling,
    format_table,
    rows_to_csv,
    table1_hardware_comparison,
    table4_system_configurations,
    table5_cxl_controller,
    table6_hardware_costs,
)
from repro.evaluation.gpu_motivation import roofline_utilization
from repro.evaluation.analysis import cent_mappings_for
from repro.models.config import LLAMA2_70B


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yyy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_rows_to_csv(self):
        csv = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        lines = csv.splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1].startswith("1,2")
        assert rows_to_csv([]) == ""


class TestStaticTables:
    def test_table1_rows(self):
        rows = table1_hardware_comparison()
        assert {row["system"] for row in rows} == {"UPMEM", "AiM", "FIMDRAM", "A100"}

    def test_table4_tco_ordering(self):
        rows = table4_system_configurations()
        cent, gpu = rows
        assert cent["owned_tco_per_hour"] < gpu["owned_tco_per_hour"]

    def test_table5_component_count(self):
        rows = table5_cxl_controller()
        assert len(rows) == 5 + 2  # five components plus two totals

    def test_table6_totals_present(self):
        rows = table6_hardware_costs()
        assert sum(1 for row in rows if row["component"] == "total") == 2

    def test_figure12_volume_sweep(self):
        result = figure12_controller_cost(volumes_millions=[1.0, 3.0])
        assert len(result["cost_vs_volume"]) == 2


class TestGpuMotivation:
    def test_figure1_memory_grows_with_batch(self):
        rows = figure1_gpu_throughput(contexts=[4096])
        memory = [row["memory_requirement_gb"] for row in rows]
        assert memory == sorted(memory)

    def test_figure2_latency_and_utilization(self):
        result = figure2_gpu_utilization(batch_sizes=[8, 64])
        assert len(result["query_latency"]) == 2
        assert len(result["utilization"]) == 3

    def test_roofline_utilization_monotone(self):
        assert roofline_utilization(10.0) < roofline_utilization(200.0)
        with pytest.raises(ValueError):
            roofline_utilization(0.0)

    def test_figure15b_trace(self):
        rows = figure15b_gpu_throttling(decode_tokens=256)
        assert {row["phase"] for row in rows} >= {"init", "prefill", "decode"}


class TestMappingSweep:
    def test_cent_mappings_for_llama70b(self):
        mappings = cent_mappings_for(LLAMA2_70B, 32)
        assert "PP=80" in mappings
        assert "TP=32" in mappings
        assert "PP=16 TP=2" in mappings
        assert len(mappings) == 6
