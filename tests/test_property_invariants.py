"""Property-based tests of core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.gemv import compile_gemv
from repro.cxl.link import CXL_3_0_LINK
from repro.cxl.primitives import broadcast, gather, send_receive
from repro.dram.channel import DRAMChannel
from repro.dram.commands import CommandType, DRAMCommand
from repro.isa.instructions import MacAllBank, WriteGlobalBuffer
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.pim.channel import PIMChannel
from repro.pnm.shared_buffer import SharedBuffer
from repro.workloads.queries import Query


# --------------------------------------------------------------------------- model strategies

def model_configs():
    return st.builds(
        ModelConfig,
        name=st.just("prop-model"),
        num_layers=st.integers(min_value=1, max_value=16),
        d_model=st.sampled_from([64, 128, 256, 512]),
        num_heads=st.sampled_from([4, 8]),
        num_kv_heads=st.sampled_from([2, 4]),
        d_ff=st.sampled_from([128, 384, 1024]),
        vocab_size=st.integers(min_value=256, max_value=4096),
        max_context=st.sampled_from([128, 512, 2048]),
    )


@given(model_configs())
def test_model_parameter_counts_consistent(model):
    # Per-layer parameters times layers plus embeddings equals the total.
    assert model.total_params == (model.num_layers * model.params_per_layer
                                  + model.embedding_params)
    assert model.kv_dim <= model.d_model
    assert model.head_dim * model.num_heads == model.d_model


@given(model_configs(), st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=2048))
def test_memory_profile_monotonic(model, batch, context):
    profile = ModelMemoryProfile(model)
    total = profile.total_bytes(batch, context)
    assert total >= profile.parameter_bytes
    assert profile.total_bytes(batch + 1, context) > total
    assert profile.total_bytes(batch, context + 1) > total


@given(st.integers(min_value=1, max_value=10**9))
def test_memory_budget_max_batch_fits(budget_kv_bytes):
    model = ModelConfig("prop", num_layers=2, d_model=64, num_heads=4, num_kv_heads=2,
                        d_ff=128, vocab_size=256, max_context=128)
    profile = ModelMemoryProfile(model)
    budget = profile.parameter_bytes + budget_kv_bytes
    batch = profile.max_batch_size(budget, context_length=128)
    if batch > 0:
        assert profile.total_bytes(batch, 128) <= budget
    assert profile.total_bytes(batch + 1, 128) > budget


# --------------------------------------------------------------------------- timing invariants

@given(st.lists(st.sampled_from([CommandType.ACT_ALL, CommandType.MAC_ALL,
                                 CommandType.PRE_ALL]), min_size=1, max_size=40))
@settings(max_examples=50)
def test_dram_issue_times_are_monotonic(kinds):
    channel = DRAMChannel(apply_refresh_derating=False)
    previous = -1.0
    row_open = False
    for kind in kinds:
        if kind is CommandType.MAC_ALL and not row_open:
            continue
        issue = channel.issue(DRAMCommand(kind, row=0))
        assert issue >= previous
        previous = issue
        row_open = kind is CommandType.ACT_ALL or (row_open and kind is CommandType.MAC_ALL)


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=8))
@settings(max_examples=30)
def test_pim_latency_scales_with_op_size(op_size, rows):
    channel = PIMChannel()
    for row in range(rows):
        channel.execute(MacAllBank(ch_mask=1, op_size=op_size, row=row))
    total = channel.busy_until_ns
    # Lower bound: one MAC per tCCD_S; upper bound: generous per-row overhead.
    assert total >= op_size * rows * channel.timing.t_ccd_s
    assert total <= rows * (op_size * channel.timing.t_ccd_s + 200.0)


@given(st.integers(min_value=1, max_value=64))
def test_wr_gb_latency_linear(op_size):
    channel = PIMChannel()
    latency = channel.execute(WriteGlobalBuffer(ch_mask=1, op_size=op_size, column=0, rs=0))
    assert latency == op_size * channel.timing.t_ccd_s


# --------------------------------------------------------------------------- communication invariants

@given(st.integers(min_value=1, max_value=10**7))
def test_send_latency_has_floor_and_grows(num_bytes):
    result = send_receive(num_bytes)
    assert result.latency_ns >= CXL_3_0_LINK.base_latency_ns
    assert send_receive(num_bytes * 2).latency_ns >= result.latency_ns


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=63))
def test_broadcast_never_cheaper_than_send(num_bytes, fan_out):
    assert broadcast(num_bytes, fan_out).latency_ns >= send_receive(num_bytes).latency_ns


@given(st.integers(min_value=1, max_value=10**5), st.integers(min_value=1, max_value=63))
def test_gather_volume_scales_with_senders(num_bytes, senders):
    result = gather(num_bytes, senders)
    assert result.bytes_moved == num_bytes * senders
    assert result.latency_ns >= CXL_3_0_LINK.base_latency_ns


# --------------------------------------------------------------------------- storage invariants

@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
                min_size=1, max_size=200),
       st.integers(min_value=0, max_value=100))
def test_shared_buffer_roundtrip(values, start_slot):
    buffer = SharedBuffer()
    vector = np.array(values, dtype=np.float32)
    buffer.write_vector(start_slot, vector)
    read_back = buffer.read_vector(start_slot, len(vector))
    # Storage is BF16, so round-trip error is bounded by BF16 precision.
    assert np.all(np.abs(read_back - vector) <= np.maximum(np.abs(vector) * 2**-7, 1e-3))


# --------------------------------------------------------------------------- compiler invariants

@given(st.integers(min_value=16, max_value=1024), st.integers(min_value=16, max_value=512),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_gemv_flops_independent_of_channel_count(out_dim, in_dim, channels):
    op = compile_gemv("prop", out_dim, in_dim, channels)
    assert op.flops == 2 * out_dim * in_dim
    # The per-channel MAC work covers at least the channel's share of elements.
    covered = op.mac_micro_ops * 256
    assert covered * channels >= out_dim * in_dim


# --------------------------------------------------------------------------- kv block conservation

@st.composite
def allocator_op_sequences(draw):
    """Random lifecycles over a small block pool: allocations, growth,
    partial (block-granular) evictions, readmissions and releases."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        kind = draw(st.sampled_from(
            ["allocate", "grow", "evict", "readmit", "release", "migrate"]))
        owner = draw(st.integers(min_value=0, max_value=4))
        tokens = draw(st.integers(min_value=0, max_value=200))
        blocks = draw(st.integers(min_value=1, max_value=6))
        ops.append((kind, owner, tokens, blocks))
    return ops


@given(st.integers(min_value=1, max_value=12), allocator_op_sequences())
@settings(max_examples=200)
def test_kv_blocks_conserved_across_preemption_and_swap(num_blocks, ops):
    """Block conservation at every step: every block of each pool is either
    free or device-resident (``free + used == pool size``), every block an
    owner logically holds is either resident or host-staged, and each
    pool's host-staging counter agrees with the per-owner ledgers — across
    allocation, growth, partial eviction, readmission, release, and
    migration of an owner between two pools (the live-migration shape:
    release on the source, fresh allocation on the destination)."""
    from repro.kvstore import BlockPool, KvAllocator

    pools = [BlockPool(budget_bytes=num_blocks * 16 * 10, bytes_per_token=10,
                       block_tokens=16) for _ in range(2)]
    allocators = [KvAllocator(pool) for pool in pools]
    held: dict = {}     # owner -> (allocator index, tokens covered)
    for kind, owner, tokens, blocks in ops:
        if kind == "allocate" and owner not in held:
            if allocators[0].allocate(owner, tokens):
                held[owner] = (0, tokens)
        elif kind == "grow" and owner in held:
            side, current = held[owner]
            target = max(current, tokens)
            if allocators[side].grow(owner, target):
                held[owner] = (side, target)
        elif kind == "evict" and owner in held:
            allocators[held[owner][0]].evict_blocks(owner, blocks)
        elif kind == "readmit" and owner in held:
            allocators[held[owner][0]].readmit(owner)
        elif kind == "release" and owner in held:
            side, current = held.pop(owner)
            assert allocators[side].release(owner) == current
        elif kind == "migrate" and owner in held:
            source, current = held[owner]
            destination = 1 - source
            # All-or-nothing: a destination too full to hold the whole
            # allocation leaves both pools untouched (the request stays).
            if allocators[destination].allocate(owner, current):
                assert allocators[source].release(owner) == current
                held[owner] = (destination, current)

        # ---- the conservation laws, after every single operation ----
        for side, (pool, allocator) in enumerate(zip(pools, allocators,
                                                     strict=True)):
            owners = [o for o, (s, _) in held.items() if s == side]
            assert pool.free_blocks + pool.used_blocks == pool.num_blocks
            assert pool.used_blocks == sum(
                allocator.holds_resident_blocks(o) for o in owners)
            assert pool.swapped_blocks == sum(
                allocator.holds_swapped_blocks(o) for o in owners)
            for o in owners:
                resident = allocator.holds_resident_blocks(o)
                swapped = allocator.holds_swapped_blocks(o)
                assert resident >= 0 and swapped >= 0
                assert resident + swapped == pool.blocks_for(held[o][1]) \
                    == allocator.holds_blocks(o)

    for owner, (side, _) in list(held.items()):
        allocators[side].release(owner)
    for pool in pools:
        assert pool.free_blocks == pool.num_blocks
        assert pool.swapped_blocks == 0


# ------------------------------------------------------- prefix chain conservation

@st.composite
def prefix_op_sequences(draw):
    """Random lifecycles over shared prefix chains: fresh allocations,
    cache-hit attaches, promote-on-prefill registrations, growth, swap,
    preemption parking (release keeping the chain pin), pinned resumption,
    chain eviction and cross-pool migration."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        kind = draw(st.sampled_from(
            ["allocate", "attach", "grow", "evict", "readmit", "park",
             "resume", "release", "register", "chain_evict", "migrate"]))
        owner = draw(st.integers(min_value=0, max_value=4))
        key = draw(st.integers(min_value=0, max_value=2))
        tokens = draw(st.integers(min_value=1, max_value=200))
        blocks = draw(st.integers(min_value=1, max_value=6))
        ops.append((kind, owner, key, tokens, blocks))
    return ops


@given(st.integers(min_value=2, max_value=16), prefix_op_sequences())
@settings(max_examples=200)
def test_prefix_chain_blocks_and_refcounts_conserved(num_blocks, ops):
    """Conservation with shared prefix chains, after every operation: each
    pool's used blocks are exactly the owners' private resident blocks plus
    the chains' shared blocks (nothing double-counted through a COW tail or
    a promote), every chain's refcount equals its attached readers —
    *including* parked preemption victims pinning their prefix — and each
    fully-resident owner still logically covers ``blocks_for(tokens)``."""
    from repro.kvstore import BlockPool, KvAllocator

    pools = [BlockPool(budget_bytes=num_blocks * 16 * 10, bytes_per_token=10,
                       block_tokens=16) for _ in range(2)]
    allocators = [KvAllocator(pool) for pool in pools]
    held: dict = {}     # owner -> (allocator index, tokens covered)
    parked: dict = {}   # owner -> allocator index (released keep_prefix)
    clock = 0.0
    for kind, owner, key, tokens, blocks in ops:
        clock += 1.0
        side = key % 2
        if kind == "allocate" and owner not in held and owner not in parked:
            if allocators[side].allocate(owner, tokens, now_s=clock):
                held[owner] = (side, tokens)
        elif kind == "attach" and owner not in held and owner not in parked:
            chain = pools[side].prefix_get(("p", key))
            if chain is not None:
                target = max(tokens, chain.tokens)
                if allocators[side].allocate(owner, target, prefix=("p", key),
                                             now_s=clock):
                    held[owner] = (side, target)
        elif kind == "grow" and owner in held:
            where, current = held[owner]
            target = max(current, tokens)
            if allocators[where].grow(owner, target):
                held[owner] = (where, target)
        elif kind == "evict" and owner in held:
            allocators[held[owner][0]].evict_blocks(owner, blocks)
        elif kind == "readmit" and owner in held:
            allocators[held[owner][0]].readmit(owner)
        elif kind == "park" and owner in held:
            where, _ = held.pop(owner)
            allocators[where].release(owner, keep_prefix=True, now_s=clock)
            if allocators[where].shared_key(owner) is not None:
                parked[owner] = where       # the pin survives the release
        elif kind == "resume" and owner in parked:
            where = parked[owner]
            chain_key = allocators[where].shared_key(owner)
            target = max(tokens, pools[where].prefix_chains[chain_key].tokens)
            if allocators[where].allocate(owner, target, now_s=clock):
                del parked[owner]
                held[owner] = (where, target)
        elif kind == "release" and owner in held:
            where, current = held.pop(owner)
            assert allocators[where].release(owner, now_s=clock) == current
        elif kind == "register" and owner in held:
            where, current = held[owner]
            allocators[where].register_prefix(("p", key), min(tokens, current),
                                              owner, now_s=clock)
        elif kind == "chain_evict":
            evictable = allocators[side].evictable_prefixes()
            if evictable:
                allocators[side].evict_prefix(evictable[0].key)
        elif kind == "migrate" and owner in held:
            source, current = held[owner]
            destination = 1 - source
            # The live-migration shape: private allocation at the
            # destination, full release (chain detach included) at the
            # source; all-or-nothing on destination shortage.
            if allocators[destination].allocate(owner, current, now_s=clock):
                assert allocators[source].release(owner, now_s=clock) == current
                held[owner] = (destination, current)

        # ---- the conservation laws, after every single operation ----
        for where, (pool, allocator) in enumerate(zip(pools, allocators,
                                                      strict=True)):
            owners = [o for o, (s, _) in held.items() if s == where]
            pinned = [o for o, s in parked.items() if s == where]
            assert pool.free_blocks + pool.used_blocks == pool.num_blocks
            assert pool.prefix_blocks == sum(
                chain.blocks for chain in pool.prefix_chains.values())
            assert pool.used_blocks == pool.prefix_blocks + sum(
                allocator.holds_resident_blocks(o) for o in owners)
            assert pool.swapped_blocks == sum(
                allocator.holds_swapped_blocks(o) for o in owners)
            for chain in pool.prefix_chains.values():
                readers = [o for o in owners + pinned
                           if allocator.shared_key(o) == chain.key]
                assert chain.refcount == len(readers)
                assert chain.refcount >= 0
            for o in owners:
                resident = allocator.holds_resident_blocks(o)
                swapped = allocator.holds_swapped_blocks(o)
                assert resident >= 0 and swapped >= 0
                assert resident + swapped + allocator.shared_blocks(o) \
                    == pool.blocks_for(held[o][1]) == allocator.holds_blocks(o)

    # Drain: held owners release fully; parked owners resume (which may need
    # several passes as departures free blocks) and release, detaching their
    # pins; then every unreferenced chain is evicted.  A parked owner can
    # stay wedged only when pinned chains hold the whole pool — its chain
    # then legitimately survives.
    for owner, (side, _) in list(held.items()):
        allocators[side].release(owner)
    progress = True
    while progress and parked:
        progress = False
        for owner, side in list(parked.items()):
            chain_key = allocators[side].shared_key(owner)
            chain_tokens = pools[side].prefix_chains[chain_key].tokens
            if allocators[side].allocate(owner, chain_tokens):
                allocators[side].release(owner)
                del parked[owner]
                progress = True
    for side, pool in enumerate(pools):
        for chain in allocators[side].evictable_prefixes():
            allocators[side].evict_prefix(chain.key)
        assert pool.swapped_blocks == 0
        assert pool.used_blocks == pool.prefix_blocks
        assert pool.free_blocks == pool.num_blocks - pool.prefix_blocks
        for chain in pool.prefix_chains.values():
            assert chain.refcount > 0       # only wedged pins survive


# --------------------------------------------------------------------------- serving invariants

_SERVING_MODEL = ModelConfig(
    name="prop-serving", num_layers=4, d_model=512, num_heads=8, num_kv_heads=4,
    d_ff=1408, vocab_size=32000, max_context=512,
)


@st.composite
def timed_traces(draw):
    """Small timed traces with mixed shapes and clustered arrivals."""
    count = draw(st.integers(min_value=2, max_value=10))
    queries = []
    clock = 0.0
    for _ in range(count):
        prompt = draw(st.integers(min_value=8, max_value=192))
        decode = draw(st.integers(min_value=4, max_value=64))
        clock += draw(st.floats(min_value=0.0, max_value=0.02,
                                allow_nan=False, allow_infinity=False))
        queries.append(Query(prompt, decode, arrival_time_s=clock))
    return queries


@given(timed_traces(), st.sampled_from(["reserve", "paged"]))
@settings(max_examples=15, deadline=None)
def test_queue_depth_timeline_conserves_requests(trace, admission):
    """The recorded backlog equals arrivals minus completions at every
    iteration, in both admission modes (the router-feedback signal must be
    trustworthy before the closed loop routes on it)."""
    from repro.core.config import CentConfig
    from repro.core.system import CentSystem
    from repro.serving import RequestState, ServingEngine

    system = CentSystem(CentConfig(num_devices=1, context_samples=2),
                        _SERVING_MODEL)
    # A tight memory budget forces queueing (and, in paged mode, preemption),
    # so the invariant is exercised under pressure, not just in steady state.
    profile_capacity = system.memory_capacity_bytes
    engine = ServingEngine(system, context_step=256, admission=admission,
                           max_batch_size=2,
                           memory_capacity_bytes=profile_capacity // 16)
    run = engine.simulate(trace)

    servable = [r for r in run.requests if r.state is not RequestState.REJECTED]
    assert run.queue_depth_timeline, "every run must record its backlog"
    for time_s, queued, running in run.queue_depth_timeline:
        arrived = sum(1 for r in servable if r.arrival_time_s <= time_s)
        finished = sum(1 for r in servable
                       if r.finish_time_s is not None and r.finish_time_s <= time_s)
        assert queued + running == arrived - finished, (
            f"backlog sample at t={time_s}: queued={queued} running={running} "
            f"but arrived={arrived} finished={finished}"
        )
        assert queued >= 0 and running >= 0
