"""Unit tests for BF16 emulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.numerics.bf16 import (
    bf16_bits_to_float,
    bf16_mac,
    bf16_quantize,
    bf16_to_float,
    float_to_bf16_bits,
)


class TestBitConversion:
    def test_exact_values_survive(self):
        values = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        assert np.array_equal(bf16_quantize(values), values)

    def test_bits_are_uint16(self):
        bits = float_to_bf16_bits(np.array([1.0, -1.0], dtype=np.float32))
        assert bits.dtype == np.uint16

    def test_one_has_expected_pattern(self):
        assert float_to_bf16_bits(np.array([1.0]))[0] == 0x3F80

    def test_negative_sign_bit(self):
        assert float_to_bf16_bits(np.array([-1.0]))[0] == 0xBF80

    def test_roundtrip_of_bit_patterns(self):
        bits = np.arange(0, 0x7F80, 7, dtype=np.uint16)  # positive finite values
        recovered = float_to_bf16_bits(bf16_bits_to_float(bits))
        assert np.array_equal(bits, recovered)

    def test_quantization_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-100, 100, size=1000).astype(np.float32)
        quantized = bf16_quantize(values)
        relative = np.abs(quantized - values) / np.maximum(np.abs(values), 1e-6)
        assert np.max(relative) < 2 ** -7

    def test_quantization_idempotent(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100).astype(np.float32)
        once = bf16_quantize(values)
        assert np.array_equal(once, bf16_quantize(once))

    def test_bf16_to_float_alias(self):
        values = np.array([3.14159, -2.71828], dtype=np.float32)
        assert np.array_equal(bf16_to_float(values), bf16_quantize(values))

    def test_scalar_input(self):
        assert bf16_quantize(np.float32(1.5)) == 1.5

    def test_zero_preserved(self):
        assert bf16_quantize(np.array([0.0]))[0] == 0.0

    def test_large_values_keep_exponent(self):
        value = np.array([3.0e38], dtype=np.float32)
        assert np.isfinite(bf16_quantize(value))[0]


class TestMac:
    def test_single_mac_matches_dot(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=16).astype(np.float32)
        b = rng.normal(size=16).astype(np.float32)
        result = bf16_mac(np.float32(0.0), a, b)
        expected = float(np.dot(bf16_quantize(a), bf16_quantize(b)))
        assert result == pytest.approx(expected, rel=1e-6)

    def test_accumulator_added(self):
        a = np.ones(16, dtype=np.float32)
        b = np.ones(16, dtype=np.float32)
        assert bf16_mac(np.float32(10.0), a, b) == pytest.approx(26.0)

    def test_batched_mac(self):
        a = np.ones((4, 16), dtype=np.float32)
        b = np.full((4, 16), 2.0, dtype=np.float32)
        result = bf16_mac(np.zeros(4, dtype=np.float32), a, b)
        assert np.allclose(result, 32.0)


class TestBf16Properties:
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                              width=32), min_size=1, max_size=64))
    def test_quantization_is_idempotent(self, values):
        array = np.array(values, dtype=np.float32)
        once = bf16_quantize(array)
        assert np.array_equal(once, bf16_quantize(once))

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                              width=32), min_size=1, max_size=64))
    def test_quantization_error_within_half_ulp(self, values):
        array = np.array(values, dtype=np.float32)
        quantized = bf16_quantize(array)
        relative = np.abs(quantized - array) / np.maximum(np.abs(array), 1e-20)
        # BF16 keeps 8 mantissa bits (7 stored); round-to-nearest keeps the
        # relative error within 2^-8.
        assert np.all((relative <= 2 ** -8) | (np.abs(array) < 1e-30))

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32))
    def test_quantization_preserves_sign(self, value):
        quantized = float(bf16_quantize(np.float32(value)))
        assert quantized == 0.0 or np.sign(quantized) == np.sign(value)
