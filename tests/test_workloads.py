"""Unit tests for query generation, batching and SLA evaluation."""

import pytest

from repro.models.config import LLAMA2_7B, LLAMA2_70B
from repro.workloads.batching import max_feasible_batch, split_into_batches
from repro.workloads.queries import Query, fixed_queries, sharegpt_like_queries
from repro.workloads.sla import evaluate_sla


class TestQueries:
    def test_query_validation(self):
        with pytest.raises(ValueError):
            Query(prompt_tokens=0, decode_tokens=10)
        assert Query(512, 3584).total_context == 4096

    def test_fixed_queries(self):
        queries = fixed_queries(8)
        assert len(queries) == 8
        assert all(q.prompt_tokens == 512 and q.decode_tokens == 3584 for q in queries)

    def test_sharegpt_like_deterministic(self):
        a = sharegpt_like_queries(64, seed=1)
        b = sharegpt_like_queries(64, seed=1)
        c = sharegpt_like_queries(64, seed=2)
        assert a == b
        assert a != c

    def test_sharegpt_like_statistics(self):
        queries = sharegpt_like_queries(2000, seed=0)
        mean_prompt = sum(q.prompt_tokens for q in queries) / len(queries)
        mean_output = sum(q.decode_tokens for q in queries) / len(queries)
        assert 80 < mean_prompt < 260
        assert 180 < mean_output < 480

    def test_sharegpt_like_respects_context_limit(self):
        queries = sharegpt_like_queries(500, max_context=2048)
        assert all(q.total_context <= 2048 for q in queries)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            fixed_queries(0)
        with pytest.raises(ValueError):
            sharegpt_like_queries(0)


class TestBatching:
    def test_max_feasible_batch_caps_at_request(self):
        memory = 4 * 80 * 1024**3
        batch = max_feasible_batch(LLAMA2_70B, memory, 2304, requested_batch=128)
        assert batch == 128

    def test_max_feasible_batch_capacity_limited(self):
        memory = 80 * 1024**3
        batch = max_feasible_batch(LLAMA2_7B, memory, 4096, requested_batch=128)
        assert batch < 128

    def test_model_must_fit(self):
        with pytest.raises(MemoryError):
            max_feasible_batch(LLAMA2_70B, 80 * 1024**3, 4096)

    def test_split_into_batches(self):
        queries = fixed_queries(10)
        batches = split_into_batches(queries, 4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert split_into_batches([], 4) == []
        with pytest.raises(ValueError):
            split_into_batches(queries, 0)


class TestSla:
    def test_classification(self):
        points = [(10.0, 100.0), (20.0, 200.0), (40.0, 300.0)]
        report = evaluate_sla(points, sla_latency_s=25.0)
        assert len(report.compliant_points) == 2
        assert len(report.violating_points) == 1
        assert report.best_compliant_throughput == 200.0
        assert report.violation_fraction == pytest.approx(1 / 3)

    def test_empty_points(self):
        report = evaluate_sla([], sla_latency_s=10.0)
        assert report.best_compliant_throughput == 0.0
        assert report.violation_fraction == 0.0

    def test_invalid_sla(self):
        with pytest.raises(ValueError):
            evaluate_sla([(1.0, 1.0)], sla_latency_s=0.0)
