"""Unit tests for query generation, arrivals, batching and SLA evaluation."""

import pytest

from repro.models.config import LLAMA2_7B, LLAMA2_70B
from repro.workloads.batching import max_feasible_batch, split_into_batches
from repro.workloads.queries import (
    Query,
    bursty_arrivals,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    validate_arrivals,
    with_arrivals,
)
from repro.workloads.sla import evaluate_sla


class TestQueries:
    def test_query_validation(self):
        with pytest.raises(ValueError):
            Query(prompt_tokens=0, decode_tokens=10)
        assert Query(512, 3584).total_context == 4096

    def test_fixed_queries(self):
        queries = fixed_queries(8)
        assert len(queries) == 8
        assert all(q.prompt_tokens == 512 and q.decode_tokens == 3584 for q in queries)

    def test_sharegpt_like_deterministic(self):
        a = sharegpt_like_queries(64, seed=1)
        b = sharegpt_like_queries(64, seed=1)
        c = sharegpt_like_queries(64, seed=2)
        assert a == b
        assert a != c

    def test_sharegpt_like_statistics(self):
        queries = sharegpt_like_queries(2000, seed=0)
        mean_prompt = sum(q.prompt_tokens for q in queries) / len(queries)
        mean_output = sum(q.decode_tokens for q in queries) / len(queries)
        assert 80 < mean_prompt < 260
        assert 180 < mean_output < 480

    def test_sharegpt_like_respects_context_limit(self):
        queries = sharegpt_like_queries(500, max_context=2048)
        assert all(q.total_context <= 2048 for q in queries)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            fixed_queries(0)
        with pytest.raises(ValueError):
            sharegpt_like_queries(0)

    def test_arrival_time_defaults_to_zero(self):
        query = Query(512, 3584)
        assert query.arrival_time_s == 0.0
        with pytest.raises(ValueError):
            Query(512, 3584, arrival_time_s=-1.0)


class TestArrivals:
    def test_poisson_sorted_non_negative_deterministic(self):
        a = poisson_arrivals(500, rate_qps=2.0, seed=1)
        b = poisson_arrivals(500, rate_qps=2.0, seed=1)
        assert a == b
        assert a != poisson_arrivals(500, rate_qps=2.0, seed=2)
        assert all(t >= 0 for t in a)
        assert a == sorted(a)

    def test_poisson_mean_rate(self):
        times = poisson_arrivals(4000, rate_qps=5.0, seed=0)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(5.0, rel=0.1)

    def test_bursty_sorted_deterministic_and_burstier(self):
        times = bursty_arrivals(4000, rate_qps=5.0, burstiness=8.0, seed=0)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)
        assert times == bursty_arrivals(4000, rate_qps=5.0, burstiness=8.0, seed=0)
        # Same average rate as the Poisson process...
        assert len(times) / times[-1] == pytest.approx(5.0, rel=0.15)

        def cv2(ts):
            gaps = [b - a for a, b in zip(ts, ts[1:], strict=False)]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        poisson = poisson_arrivals(4000, rate_qps=5.0, seed=0)
        # ...but far larger inter-arrival variability.
        assert cv2(times) > 2.0 * cv2(poisson)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 1.0, burstiness=0.0)

    def test_negative_and_fractional_counts_rejected(self):
        for generator in (poisson_arrivals, bursty_arrivals):
            with pytest.raises(ValueError, match="count"):
                generator(-5, 1.0)
            with pytest.raises(ValueError, match="count"):
                generator(2.5, 1.0)
            with pytest.raises(ValueError, match="count"):
                generator(True, 1.0)

    def test_non_finite_rates_rejected(self):
        for bad_rate in (float("nan"), float("inf"), -float("inf"), -1.0):
            with pytest.raises(ValueError, match="rate"):
                poisson_arrivals(10, bad_rate)
            with pytest.raises(ValueError, match="rate"):
                bursty_arrivals(10, bad_rate)

    def test_non_finite_start_and_burstiness_rejected(self):
        with pytest.raises(ValueError, match="start"):
            poisson_arrivals(10, 1.0, start_s=float("nan"))
        with pytest.raises(ValueError, match="start"):
            bursty_arrivals(10, 1.0, start_s=-1.0)
        with pytest.raises(ValueError, match="burstiness"):
            bursty_arrivals(10, 1.0, burstiness=float("inf"))

    def test_validate_arrivals(self):
        validate_arrivals([0.0, 1.0, 1.0, 2.5])
        with pytest.raises(ValueError):
            validate_arrivals([0.0, -1.0])
        with pytest.raises(ValueError):
            validate_arrivals([2.0, 1.0])
        with pytest.raises(ValueError):
            validate_arrivals([0.0, float("nan")])

    def test_with_arrivals(self):
        queries = fixed_queries(3)
        timed = with_arrivals(queries, [0.5, 1.5, 2.5])
        assert [q.arrival_time_s for q in timed] == [0.5, 1.5, 2.5]
        # Lengths are preserved, order is preserved.
        assert [(q.prompt_tokens, q.decode_tokens) for q in timed] == \
               [(q.prompt_tokens, q.decode_tokens) for q in queries]
        with pytest.raises(ValueError):
            with_arrivals(queries, [0.0, 1.0])
        with pytest.raises(ValueError):
            with_arrivals(queries, [2.0, 1.0, 3.0])


class TestBatching:
    def test_max_feasible_batch_caps_at_request(self):
        memory = 4 * 80 * 1024**3
        batch = max_feasible_batch(LLAMA2_70B, memory, 2304, requested_batch=128)
        assert batch == 128

    def test_max_feasible_batch_capacity_limited(self):
        memory = 80 * 1024**3
        batch = max_feasible_batch(LLAMA2_7B, memory, 4096, requested_batch=128)
        assert batch < 128

    def test_model_must_fit(self):
        with pytest.raises(MemoryError):
            max_feasible_batch(LLAMA2_70B, 80 * 1024**3, 4096)

    def test_split_into_batches(self):
        queries = fixed_queries(10)
        batches = split_into_batches(queries, 4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert split_into_batches([], 4) == []
        with pytest.raises(ValueError):
            split_into_batches(queries, 0)

    def test_split_accepts_any_sequence_and_preserves_order(self):
        queries = sharegpt_like_queries(7, seed=3)
        as_tuple = split_into_batches(tuple(queries), 3)
        as_generator = split_into_batches((q for q in queries), 3)
        assert as_tuple == as_generator == split_into_batches(queries, 3)
        flattened = [q for batch in as_tuple for q in batch]
        assert flattened == queries

    def test_split_error_names_the_batch_size(self):
        with pytest.raises(ValueError, match="-3"):
            split_into_batches(fixed_queries(2), -3)


class TestSla:
    def test_classification(self):
        points = [(10.0, 100.0), (20.0, 200.0), (40.0, 300.0)]
        report = evaluate_sla(points, sla_latency_s=25.0)
        assert len(report.compliant_points) == 2
        assert len(report.violating_points) == 1
        assert report.best_compliant_throughput == 200.0
        assert report.violation_fraction == pytest.approx(1 / 3)

    def test_empty_points(self):
        report = evaluate_sla([], sla_latency_s=10.0)
        assert report.best_compliant_throughput == 0.0
        assert report.violation_fraction == 0.0

    def test_invalid_sla(self):
        with pytest.raises(ValueError):
            evaluate_sla([(1.0, 1.0)], sla_latency_s=0.0)
