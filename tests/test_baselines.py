"""Unit tests for the GPU, CXL-PNM, AttAcc and NeuPIM baselines."""

import pytest

from repro.baselines.attacc import ATTACC_8GPU_8PIM, AttAccSystem
from repro.baselines.cxl_pnm import CxlPnmSystem
from repro.baselines.gpu import A100_80GB, GPUConfig, GPUSystem
from repro.baselines.neupim import NEUPIM_8GPU_8PIM, NeuPimSystem
from repro.baselines.roofline import AcceleratorEnvelope
from repro.models.config import GPT3_175B, LLAMA2_7B, LLAMA2_70B, OPT_66B


class TestGpuSystem:
    def test_a100_envelope(self):
        assert A100_80GB.memory_bytes == 80 * 1024**3
        assert A100_80GB.bf16_tflops == 312.0
        assert A100_80GB.tdp_w == 300.0

    def test_model_must_fit(self):
        with pytest.raises(MemoryError):
            GPUSystem(LLAMA2_70B, num_gpus=1)
        GPUSystem(LLAMA2_70B, num_gpus=4)

    def test_max_batch_shrinks_with_context(self):
        gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
        assert gpu.max_batch_size(4096) > gpu.max_batch_size(32768)

    def test_decode_latency_grows_with_batch_and_context(self):
        gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
        assert gpu.decode_step_latency_s(64, 4096) > gpu.decode_step_latency_s(16, 4096)
        assert gpu.decode_step_latency_s(64, 8192) > gpu.decode_step_latency_s(64, 2048)

    def test_throughput_saturates_with_batch(self):
        # Figure 1: throughput grows with batch but with diminishing returns
        # as the KV traffic dominates.
        gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
        t32 = gpu.decode_throughput(32, 4096)
        t128 = gpu.decode_throughput(128, 4096)
        assert t128 > t32
        assert t128 < 4 * t32

    def test_prefill_is_compute_bound(self):
        gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
        prefill_tps = gpu.prefill_throughput(32, 512)
        decode_tps = gpu.decode_throughput(32, 4096)
        assert prefill_tps > decode_tps

    def test_decode_utilization_is_low(self):
        gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
        assert gpu.decode_compute_utilization(128, 4096) < 0.4

    def test_query_latency_includes_decode_growth(self):
        gpu = GPUSystem(LLAMA2_7B, num_gpus=1)
        short = gpu.query_latency_s(8, 512, 128)
        long = gpu.query_latency_s(8, 512, 3584)
        assert long > short * 10

    def test_multi_gpu_derating(self):
        single = GPUSystem(LLAMA2_7B, num_gpus=1)
        quad = GPUSystem(LLAMA2_7B, num_gpus=4)
        assert single.tp_efficiency == 1.0
        assert quad.tp_efficiency < 1.0
        assert quad.aggregate_bandwidth_gbps < 4 * single.aggregate_bandwidth_gbps

    def test_end_to_end_throughput_positive(self):
        gpu = GPUSystem(LLAMA2_7B, num_gpus=1)
        assert gpu.end_to_end_throughput(32, 512, 512) > 0

    def test_invalid_arguments(self):
        gpu = GPUSystem(LLAMA2_7B, num_gpus=1)
        with pytest.raises(ValueError):
            gpu.decode_step_latency_s(0, 1024)
        with pytest.raises(ValueError):
            gpu.prefill_latency_s(1, 0)
        with pytest.raises(ValueError):
            GPUConfig(gemm_bandwidth_efficiency=0.0)


class TestRooflineEnvelope:
    def test_decode_bandwidth_bound(self):
        envelope = AcceleratorEnvelope("test", tflops=100.0, memory_bandwidth_gbps=1000.0,
                                       memory_capacity_bytes=512 * 1024**3)
        latency = envelope.decode_step_latency_s(OPT_66B, batch_size=1, context_length=512)
        weights_time = 2 * OPT_66B.total_params / (1000e9 * 0.7)
        assert latency == pytest.approx(weights_time, rel=0.2)

    def test_max_batch(self):
        envelope = AcceleratorEnvelope("test", tflops=100.0, memory_bandwidth_gbps=1000.0,
                                       memory_capacity_bytes=512 * 1024**3)
        assert envelope.max_batch_size(OPT_66B, 1088) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorEnvelope("bad", tflops=0.0, memory_bandwidth_gbps=1.0,
                                memory_capacity_bytes=1)


class TestCxlPnm:
    def test_figure17_configurations(self):
        one = CxlPnmSystem(num_devices=1)
        eight = CxlPnmSystem(num_devices=8)
        assert one.tflops == pytest.approx(8.2)
        assert one.memory_capacity_bytes == 512 * 1024**3
        assert eight.memory_bandwidth_tbps == pytest.approx(8.8, rel=0.01)

    def test_throughput_grows_with_devices(self):
        small = CxlPnmSystem(1).end_to_end_throughput(OPT_66B, 64, 1024)
        large = CxlPnmSystem(32).end_to_end_throughput(OPT_66B, 64, 1024)
        assert large > small

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            CxlPnmSystem(num_devices=0)


class TestGpuPimBaselines:
    def test_attacc_power(self):
        system = AttAccSystem(GPT3_175B)
        expected = 8 * 300 + 8 * ATTACC_8GPU_8PIM.pim_device_power_w
        assert system.system_power_w == pytest.approx(expected)

    def test_attacc_batching_helps_short_sequences(self):
        system = AttAccSystem(GPT3_175B)
        assert (system.end_to_end_throughput(256, 128, 128)
                > system.end_to_end_throughput(64, 128, 128))

    def test_attacc_long_context_hurts(self):
        system = AttAccSystem(GPT3_175B)
        assert (system.decode_step_latency_s(64, 4096)
                > system.decode_step_latency_s(64, 256))

    def test_neupim_overlap_faster_than_attacc_structure(self):
        attacc = AttAccSystem(GPT3_175B)
        neupim = NeuPimSystem(GPT3_175B)
        # With the same batch/context, NeuPIM's dual-row-buffer overlap makes
        # its decode step no slower than AttAcc's.
        assert (neupim.decode_step_latency_s(128, 2048)
                <= attacc.decode_step_latency_s(128, 2048) * 1.05)

    def test_neupim_max_batch_positive(self):
        assert NeuPimSystem(GPT3_175B).max_batch_size(2048) >= 1

    def test_neupim_config_validation(self):
        assert NEUPIM_8GPU_8PIM.overlap_fraction < 1.0
        with pytest.raises(ValueError):
            NeuPimSystem(GPT3_175B).decode_step_latency_s(0, 128)
