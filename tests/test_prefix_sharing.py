"""Shared-prefix KV reuse: block chains, copy-on-write, engine integration.

The kvstore grows hash-identified prefix chains (refcounted shared blocks,
COW on divergence, promote-on-prefill registration) and the serving engine
admits cache hits with only their suffix blocks while skipping the shared
prefill.  These tests pin the chain lifecycle at the allocator level, the
engine's hit accounting and eviction ranking, and the two bit-exactness
contracts the feature must not break: ``prefix_sharing=False`` reproduces
the pre-sharing engine exactly, and with sharing on the scalar, vectorized,
traced and untraced paths all agree to the last float.
"""

import pytest

from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.kvstore import BlockPool, KvAllocator
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving import RequestState, ServingEngine
from repro.telemetry import TraceRecorder
from repro.workloads import (
    Query,
    poisson_arrivals,
    prefix_reuse_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024,
                       num_heads=16, num_kv_heads=4, d_ff=2816,
                       vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    return CentSystem(CentConfig(num_devices=2, context_samples=2),
                      small_model)


def prefix_trace(count=200, reuse=0.8, rate=2.0, seed=7, tenants=4):
    queries = prefix_reuse_queries(count, num_tenants=tenants,
                                   reuse_fraction=reuse, seed=seed,
                                   max_context=2048)
    return with_arrivals(queries, poisson_arrivals(count, rate, seed=3))


def strip_prefixes(trace):
    """The same workload with every prefix tag removed (pre-sharing shape)."""
    return [Query(q.prompt_tokens, q.decode_tokens,
                  arrival_time_s=q.arrival_time_s) for q in trace]


def tight_capacity(model, queries=30, context=512):
    profile = ModelMemoryProfile(model)
    return int(profile.parameter_bytes
               + queries * profile.kv_cache_bytes_per_token() * context)


def run_fingerprint(engine, trace):
    """Every observable float/int of a run, for exact comparison."""
    state = engine.begin(trace)
    run = engine.advance(state)
    return (
        run.makespan_s, run.prefill_time_s, run.decode_time_s,
        run.decode_step_tokens, run.peak_memory_bytes,
        tuple(run.queue_depth_timeline), tuple(run.preemption_log),
        tuple((r.state.name, r.finish_time_s, r.first_token_time_s,
               r.last_token_time_s, r.admitted_time_s, r.stall_s,
               r.preempted_count, r.num_swap_outs, r.num_swap_ins,
               r.swap_time_s, r.recompute_tokens, r.partial_evictions,
               r.prefix_lookups, r.prefix_hits, r.prefix_hit_tokens,
               r.cow_blocks, tuple(r.tbt_samples_s)) for r in run.requests),
    )


# ------------------------------------------------------------------ allocator


class TestPrefixChains:
    """Chain lifecycle on the raw pool/allocator, block-exact."""

    def make(self, num_blocks=64, block_tokens=16):
        pool = BlockPool(budget_bytes=num_blocks * block_tokens * 10,
                         bytes_per_token=10, block_tokens=block_tokens)
        return pool, KvAllocator(pool)

    def test_promote_transfers_full_blocks_plus_tail_snapshot(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)          # 7 blocks at B=16
        used = pool.used_blocks
        assert alloc.register_prefix(("t", 40), 40, "a")
        chain = pool.prefix_get(("t", 40))
        # 40 tokens = 2 full blocks transferred + 1 tail snapshot allocated.
        assert chain.blocks == 3 and chain.tokens == 40 and chain.refcount == 1
        assert pool.used_blocks == used + 1      # only the tail was new
        assert alloc.holds_resident_blocks("a") == 5
        assert alloc.holds_blocks("a") == pool.blocks_for(100)

    def test_attach_books_suffix_plus_cow_only(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert alloc.register_prefix(("t", 40), 40, "a")
        free_before = pool.free_blocks
        assert alloc.allocate("b", 100, prefix=("t", 40))
        # 7 logical blocks, 2 shared, 5 private (incl. the COW tail dup).
        assert alloc.shared_blocks("b") == 2
        assert alloc.shared_tokens("b") == 32
        assert alloc.holds_resident_blocks("b") == 5
        assert alloc.holds_blocks("b") == pool.blocks_for(100)
        assert free_before - pool.free_blocks == 5
        assert pool.prefix_get(("t", 40)).refcount == 2

    def test_block_aligned_prefix_has_no_cow_tail(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        used = pool.used_blocks
        assert alloc.register_prefix(("t", 32), 32, "a")
        assert pool.used_blocks == used          # no tail snapshot needed
        assert alloc.allocate("b", 100, prefix=("t", 32))
        assert alloc.holds_resident_blocks("b") == pool.blocks_for(100) - 2

    def test_refcounted_chain_resists_eviction(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert alloc.register_prefix(("t", 40), 40, "a")
        assert alloc.evictable_prefixes() == []
        with pytest.raises(ValueError):
            pool.prefix_evict(("t", 40))
        alloc.release("a")                       # last reader detaches
        assert [c.key for c in alloc.evictable_prefixes()] == [("t", 40)]
        freed = alloc.evict_prefix(("t", 40))
        assert freed == 3
        assert pool.free_blocks == pool.num_blocks

    def test_park_pins_chain_and_resume_reattaches(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert alloc.register_prefix(("t", 40), 40, "a")
        alloc.release("a", keep_prefix=True)     # the preemption path
        chain = pool.prefix_get(("t", 40))
        assert chain.refcount == 1               # parked victim still pins it
        assert alloc.evictable_prefixes() == []
        assert alloc.allocate("a", 100)          # resume: pinned re-attach
        assert alloc.shared_key("a") == ("t", 40)
        assert alloc.holds_blocks("a") == pool.blocks_for(100)
        alloc.release("a")
        assert chain.refcount == 0

    def test_shortage_reclaims_coldest_chain_first(self):
        pool, alloc = self.make(num_blocks=12)
        assert alloc.allocate("a", 64)           # 4 blocks
        assert alloc.register_prefix(("t", 32), 32, "a")
        assert alloc.allocate("b", 64)
        assert alloc.register_prefix(("u", 32), 32, "b", now_s=5.0)
        alloc.release("a")
        alloc.release("b", now_s=6.0)            # chains cached, 4 used
        # 8 blocks free; asking for 10 reclaims the coldest chain (t) and
        # stops there — the hotter chain (u) survives the shortfall.
        assert alloc.allocate("c", 160)
        assert ("t", 32) not in pool.prefix_chains
        assert ("u", 32) in pool.prefix_chains
        alloc.release("c")
        assert pool.free_blocks == pool.num_blocks - 2

    def test_register_rejects_duplicates_and_staged_prefixes(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert alloc.register_prefix(("t", 40), 40, "a")
        assert not alloc.register_prefix(("t", 40), 40, "a")   # attached
        assert alloc.allocate("b", 100)
        assert not alloc.register_prefix(("t", 40), 40, "b")   # key taken
        assert alloc.allocate("c", 100)
        alloc.evict_blocks("c", 6)               # prefix partially host-staged
        assert not alloc.register_prefix(("u", 40), 40, "c")

    def test_attach_demands_at_least_the_chain_tokens(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert alloc.register_prefix(("t", 40), 40, "a")
        with pytest.raises(ValueError, match="fewer than"):
            alloc.allocate("b", 30, prefix=("t", 40))

    def test_no_prefix_traffic_leaves_pool_identical(self):
        pool, alloc = self.make()
        assert alloc.allocate("a", 100)
        assert pool.prefix_chains == {}
        assert pool.prefix_blocks == 0
        assert alloc.shared_key("a") is None
        assert alloc.release("a") == 100


# ------------------------------------------------------------------ workload


class TestPrefixWorkload:
    def test_prefix_tags_validate(self):
        with pytest.raises(ValueError):
            Query(100, 10, prefix_id="t")            # id without tokens
        with pytest.raises(ValueError):
            Query(100, 10, prefix_tokens=50)         # tokens without id
        with pytest.raises(ValueError):
            Query(100, 10, prefix_id="t", prefix_tokens=200)  # > prompt
        query = Query(100, 10, prefix_id="t", prefix_tokens=60)
        assert query.prefix_key == ("t", 60)
        assert Query(100, 10).prefix_key is None

    def test_reuse_fraction_controls_tagging(self):
        tagged = prefix_reuse_queries(100, reuse_fraction=0.9, seed=3)
        untagged = prefix_reuse_queries(100, reuse_fraction=0.0, seed=3)
        assert sum(q.prefix_key is not None for q in tagged) > 60
        assert all(q.prefix_key is None for q in untagged)
        for query in tagged:
            if query.prefix_key is not None:
                assert 0 < query.prefix_tokens <= query.prompt_tokens

    def test_deterministic_by_seed(self):
        a = prefix_reuse_queries(50, seed=11)
        b = prefix_reuse_queries(50, seed=11)
        c = prefix_reuse_queries(50, seed=12)
        assert [(q.prompt_tokens, q.prefix_key) for q in a] \
            == [(q.prompt_tokens, q.prefix_key) for q in b]
        assert [(q.prompt_tokens, q.prefix_key) for q in a] \
            != [(q.prompt_tokens, q.prefix_key) for q in c]

    def test_tenants_share_prefix_lengths(self):
        queries = prefix_reuse_queries(200, num_tenants=3, reuse_fraction=1.0,
                                       seed=5)
        keys = {q.prefix_key for q in queries if q.prefix_key}
        # One chain identity per tenant: the reuse the cache feeds on.
        assert 1 <= len(keys) <= 3


# ------------------------------------------------------------------ engine


class TestEnginePrefixSharing:
    def test_hits_skip_prefill_and_are_counted(self, system, small_model):
        engine = ServingEngine(
            system, admission="paged",
            memory_capacity_bytes=tight_capacity(small_model))
        result = engine.run(prefix_trace())
        assert result.num_completed == 200
        assert result.num_prefix_lookups > 0
        assert 0 < result.num_prefix_hits <= result.num_prefix_lookups
        assert result.prefix_hit_tokens > 0
        assert result.num_cow_blocks > 0
        assert result.prefix_hit_rate == \
            result.num_prefix_hits / result.num_prefix_lookups
        metrics = result.metrics.as_dict()
        assert metrics["kv.prefix_hits"] == result.num_prefix_hits
        assert metrics["kv.prefix_hit_tokens"] == result.prefix_hit_tokens
        assert metrics["kv.cow_blocks"] == result.num_cow_blocks
        assert metrics["serving.prefix_hit_rate"] == \
            pytest.approx(result.prefix_hit_rate)

    def test_sharing_eases_memory_pressure(self, system, small_model):
        trace = prefix_trace(count=300, reuse=0.8, rate=12.0, seed=11,
                             tenants=6)
        capacity = tight_capacity(small_model, queries=4)
        results = {}
        for sharing in (True, False):
            engine = ServingEngine(system, admission="paged",
                                   memory_capacity_bytes=capacity,
                                   prefix_sharing=sharing)
            results[sharing] = engine.run(trace)
        shared, fresh = results[True], results[False]
        assert shared.num_completed == fresh.num_completed == 300
        # Shared blocks shrink the working set: fewer evictions, less stall.
        assert shared.num_preemptions <= fresh.num_preemptions
        assert shared.preemption_stall_time_s < fresh.preemption_stall_time_s
        assert shared.num_prefix_hits > 0 and fresh.num_prefix_hits == 0

    def test_sharing_off_reproduces_prefix_stripped_run(self, system,
                                                        small_model):
        """The bit-exact regression: ``prefix_sharing=False`` on a tagged
        trace must replay the pre-sharing engine — which is exactly what
        any engine does on the same trace with the tags stripped."""
        trace = prefix_trace()
        capacity = tight_capacity(small_model)
        off = ServingEngine(system, admission="paged",
                            memory_capacity_bytes=capacity,
                            prefix_sharing=False)
        baseline = ServingEngine(system, admission="paged",
                                 memory_capacity_bytes=capacity)
        assert run_fingerprint(off, trace) \
            == run_fingerprint(baseline, strip_prefixes(trace))

    def test_untagged_trace_is_sharing_noop(self, system, small_model):
        trace = strip_prefixes(prefix_trace(count=60))
        capacity = tight_capacity(small_model)
        on = ServingEngine(system, admission="paged",
                           memory_capacity_bytes=capacity)
        off = ServingEngine(system, admission="paged",
                            memory_capacity_bytes=capacity,
                            prefix_sharing=False)
        fp_on = run_fingerprint(on, trace)
        assert fp_on == run_fingerprint(off, trace)
        result = on.run(trace)
        assert result.num_prefix_lookups == 0

    @pytest.mark.parametrize("queries", [30, 4])
    def test_scalar_vectorized_bitexact_with_sharing(self, system,
                                                     small_model, queries):
        trace = prefix_trace(count=150, rate=8.0 if queries < 10 else 2.0)
        capacity = tight_capacity(small_model, queries=queries)
        fingerprints = []
        for vectorize in (True, False):
            engine = ServingEngine(system, admission="paged",
                                   memory_capacity_bytes=capacity,
                                   vectorize=vectorize)
            fingerprints.append(run_fingerprint(engine, trace))
        assert fingerprints[0] == fingerprints[1]

    def test_traced_run_is_bitexact_and_carries_prefix_events(
            self, system, small_model):
        trace = prefix_trace()
        capacity = tight_capacity(small_model)
        untraced = ServingEngine(system, admission="paged",
                                 memory_capacity_bytes=capacity)
        recorder = TraceRecorder()
        traced = ServingEngine(system, admission="paged",
                               memory_capacity_bytes=capacity)
        plain = untraced.run(trace)
        observed = traced.run(trace, telemetry=recorder)
        assert plain.makespan_s == observed.makespan_s
        assert plain.num_prefix_hits == observed.num_prefix_hits
        names = {event.name for _, event in recorder.iter_events()}
        assert {"kv.prefix_hit", "kv.cow", "kv.prefix_register"} <= names

    def test_first_token_still_fires_on_full_prefix_hit(self, system):
        # A query whose whole prompt is the shared prefix must still price
        # at least one prefill token, or TTFT would never be stamped.
        queries = [
            Query(64, 8, prefix_id="t", prefix_tokens=64, arrival_time_s=0.0),
            Query(64, 8, prefix_id="t", prefix_tokens=64, arrival_time_s=0.1),
        ]
        engine = ServingEngine(system, admission="paged")
        run = engine.simulate(queries)
        for request in run.requests:
            assert request.state is RequestState.FINISHED
            assert request.first_token_time_s is not None


# ------------------------------------------------------------------ migration


class TestMigrationWithSharing:
    def test_migrated_request_keeps_prefix_counters_and_finishes(
            self, system, small_model):
        capacity = tight_capacity(small_model, queries=8)
        source = ServingEngine(system, admission="paged",
                               memory_capacity_bytes=capacity)
        target = ServingEngine(system, admission="paged",
                               memory_capacity_bytes=capacity)
        queries = prefix_reuse_queries(40, num_tenants=4, reuse_fraction=0.8,
                                       mean_decode_tokens=1500.0, seed=7,
                                       max_context=2048)
        trace = with_arrivals(queries, poisson_arrivals(40, 300.0, seed=3))
        state_a = source.begin(trace)
        source.advance(state_a, until_s=0.3)
        movable = [r for r in state_a.unfinished
                   if r.context_length > 0 and r.restore_remaining == 0]
        assert movable, "the cut must strand in-flight work"
        hit_movers = [r for r in movable if r.prefix_hits]

        state_b = target.begin([], planning_trace=trace)
        state_b.clock = 0.3
        landed = []
        for request in movable:
            counters = (request.prefix_lookups, request.prefix_hits,
                        request.prefix_hit_tokens, request.cow_blocks)
            moved = source.migrate_out(state_a, request, now_s=0.3)
            migrated = target.migrate_in(state_b, moved, now_s=0.3)
            assert (migrated.prefix_lookups, migrated.prefix_hits,
                    migrated.prefix_hit_tokens,
                    migrated.cow_blocks) == counters
            landed.append(migrated)
        for request in state_a.unfinished:
            target.extend(state_b, [request.query])
        source.advance(state_a)
        target.advance(state_b)
        assert state_a.drained and state_b.drained
        for migrated in landed:
            assert migrated.state is RequestState.FINISHED
        if hit_movers:
            # Hit history crossed the wire with the request.
            assert any(r.prefix_hits for r in landed)
        # Departures released their chain references on the source: every
        # remaining chain is unpinned once the source drains.
        for chain in state_a.allocator.pool.prefix_chains.values():
            assert chain.refcount == 0


# ------------------------------------------------------------------ study


class TestPrefixReuseStudy:
    def test_sharing_wins_on_high_reuse_overload(self, small_model):
        from repro.evaluation import prefix_reuse_study
        study = prefix_reuse_study(model=small_model, num_devices=2,
                                   num_queries=48, reuse_fractions=(0.0, 0.9),
                                   context_samples=2, mean_prefix_tokens=384.0)
        by_key = {(row["reuse_fraction"], row["mode"]): row
                  for row in study["rows"]}
        shared = by_key[(0.9, "prefix-shared")]
        fresh = by_key[(0.9, "no-sharing")]
        assert shared["prefix_hit_rate"] > 0.5
        assert shared["goodput_tokens_per_s"] >= fresh["goodput_tokens_per_s"]
        assert study["goodput_gain_by_reuse"][0.9] >= 1.0
        # Zero reuse: sharing is inert and the row pair is identical.
        assert by_key[(0.0, "prefix-shared")]["goodput_tokens_per_s"] \
            == by_key[(0.0, "no-sharing")]["goodput_tokens_per_s"]
        assert by_key[(0.0, "prefix-shared")]["prefix_hit_rate"] == 0.0
