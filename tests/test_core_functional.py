"""Functional-simulator tests: PIM dataflow numerics versus NumPy references."""

import numpy as np
import pytest

from repro.core.functional import (
    FunctionalGemv,
    FunctionalTransformerBlock,
    ReferenceTransformerBlock,
    make_block_weights,
)
from repro.models.config import ModelConfig
from repro.numerics.bf16 import bf16_quantize


@pytest.fixture
def tiny(tiny_model) -> ModelConfig:
    return tiny_model


class TestFunctionalGemv:
    def test_matches_numpy_dot(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(0, 0.1, size=(48, 64)).astype(np.float32)
        vector = rng.normal(0, 1.0, size=64).astype(np.float32)
        result = FunctionalGemv().execute(matrix, vector)
        expected = bf16_quantize(matrix) @ bf16_quantize(vector)
        assert np.allclose(result, expected, rtol=0.03, atol=0.03)

    def test_non_multiple_dimensions_padded(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(10, 25)).astype(np.float32)
        vector = rng.normal(size=25).astype(np.float32)
        result = FunctionalGemv(num_banks=4).execute(matrix, vector)
        expected = matrix @ vector
        assert np.allclose(result, expected, rtol=0.05, atol=0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FunctionalGemv().execute(np.zeros((4, 8)), np.zeros(4))

    def test_invalid_bank_count(self):
        with pytest.raises(ValueError):
            FunctionalGemv(num_banks=0)


class TestWeights:
    def test_shapes_follow_model(self, tiny):
        weights = make_block_weights(tiny)
        assert weights["wq"].shape == (tiny.d_model, tiny.d_model)
        assert weights["wk"].shape == (tiny.kv_dim, tiny.d_model)
        assert weights["w1"].shape == (tiny.d_ff, tiny.d_model)

    def test_deterministic_by_seed(self, tiny):
        a = make_block_weights(tiny, seed=3)
        b = make_block_weights(tiny, seed=3)
        c = make_block_weights(tiny, seed=4)
        assert np.array_equal(a["wq"], b["wq"])
        assert not np.array_equal(a["wq"], c["wq"])


class TestBlockAgainstReference:
    def test_single_token_matches(self, tiny):
        weights = make_block_weights(tiny, seed=11)
        reference = ReferenceTransformerBlock(tiny, weights)
        functional = FunctionalTransformerBlock(tiny, weights)
        x = np.random.default_rng(11).normal(0, 1, tiny.d_model).astype(np.float32)
        out_ref = reference.forward(x, position=0)
        out_fun = functional.forward(x, position=0)
        scale = np.max(np.abs(out_ref)) + 1e-6
        assert np.max(np.abs(out_ref - out_fun)) / scale < 0.05

    def test_multi_token_divergence_bounded(self, tiny):
        weights = make_block_weights(tiny, seed=5)
        reference = ReferenceTransformerBlock(tiny, weights)
        functional = FunctionalTransformerBlock(tiny, weights)
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, tiny.d_model).astype(np.float32)
        x_ref, x_fun = x.copy(), x.copy()
        for position in range(3):
            x_ref = reference.forward(x_ref, position)
            x_fun = functional.forward(x_fun, position)
        scale = np.max(np.abs(x_ref)) + 1e-6
        assert np.max(np.abs(x_ref - x_fun)) / scale < 0.08

    def test_kv_cache_grows(self, tiny):
        weights = make_block_weights(tiny)
        functional = FunctionalTransformerBlock(tiny, weights)
        x = np.zeros(tiny.d_model, dtype=np.float32)
        functional.forward(x, 0)
        functional.forward(x, 1)
        assert len(functional.key_cache) == 2
        assert len(functional.value_cache) == 2

    def test_reference_residual_path(self, tiny):
        # With zero weights everywhere, the block must reduce to the identity
        # (both residual connections pass the input through).
        weights = {key: np.zeros_like(value) for key, value in make_block_weights(tiny).items()}
        weights["rms1"] = np.ones(tiny.d_model, dtype=np.float32)
        weights["rms2"] = np.ones(tiny.d_model, dtype=np.float32)
        reference = ReferenceTransformerBlock(tiny, weights)
        x = np.random.default_rng(0).normal(0, 1, tiny.d_model).astype(np.float32)
        assert np.allclose(reference.forward(x, 0), x, atol=1e-5)
