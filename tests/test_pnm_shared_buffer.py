"""Unit tests for the 64 KB shared buffer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pnm.shared_buffer import SharedBuffer


class TestSlotView:
    def test_capacity(self):
        buffer = SharedBuffer()
        assert buffer.capacity_bytes == 64 * 1024
        assert buffer.num_slots == 2048
        assert buffer.ELEMENTS_PER_SLOT == 16

    def test_slot_roundtrip(self):
        buffer = SharedBuffer()
        values = np.linspace(-1, 1, 16).astype(np.float32)
        buffer.write_slot(100, values)
        assert np.allclose(buffer.read_slot(100), values, atol=1e-2)

    def test_slot_bounds(self):
        buffer = SharedBuffer()
        with pytest.raises(ValueError):
            buffer.write_slot(2048, np.zeros(16, dtype=np.float32))

    def test_wrong_shape_rejected(self):
        buffer = SharedBuffer()
        with pytest.raises(ValueError):
            buffer.write_slot(0, np.zeros(15, dtype=np.float32))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SharedBuffer(capacity_bytes=100)


class TestVectorView:
    def test_vector_roundtrip(self):
        buffer = SharedBuffer()
        vector = np.arange(100, dtype=np.float32)
        slots = buffer.write_vector(10, vector)
        assert slots == 7
        assert np.array_equal(buffer.read_vector(10, 100), vector)

    def test_vector_overflow_rejected(self):
        buffer = SharedBuffer()
        with pytest.raises(ValueError):
            buffer.write_vector(2040, np.zeros(200, dtype=np.float32))

    def test_slots_for(self):
        assert SharedBuffer.slots_for(1) == 1
        assert SharedBuffer.slots_for(16) == 1
        assert SharedBuffer.slots_for(17) == 2
        with pytest.raises(ValueError):
            SharedBuffer.slots_for(0)


class TestByteView:
    def test_halfword_store_load(self):
        buffer = SharedBuffer()
        buffer.store_halfword(32, 1.5)
        assert buffer.load_halfword(32) == pytest.approx(1.5)

    def test_byte_view_aliases_slot_view(self):
        buffer = SharedBuffer()
        values = np.arange(16, dtype=np.float32)
        buffer.write_slot(0, values)
        # Element 3 of slot 0 lives at byte address 6.
        assert buffer.load_halfword(6) == pytest.approx(3.0)

    def test_unaligned_access_rejected(self):
        buffer = SharedBuffer()
        with pytest.raises(ValueError):
            buffer.load_halfword(3)

    def test_out_of_range_rejected(self):
        buffer = SharedBuffer()
        with pytest.raises(ValueError):
            buffer.store_halfword(64 * 1024, 1.0)


@given(st.integers(min_value=1, max_value=512))
def test_slots_for_covers_elements(num_elements):
    slots = SharedBuffer.slots_for(num_elements)
    assert slots * 16 >= num_elements
    assert (slots - 1) * 16 < num_elements
