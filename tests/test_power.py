"""Unit tests for the power models (DRAM, controller, CENT system, GPU)."""

import pytest

from repro.core.config import CentConfig
from repro.core.performance import PerformanceModel
from repro.dram.commands import CommandType
from repro.mapping.parallelism import PipelineParallel
from repro.models.config import LLAMA2_7B
from repro.power.cent_power import CentPowerModel
from repro.power.cxl_controller import CXL_CONTROLLER_28NM, CxlControllerPower
from repro.power.dram_power import DramPowerModel, DramPowerParameters, GDDR6_PIM_POWER
from repro.power.energy import energy_per_token, tokens_per_joule
from repro.power.gpu_power import A100_POWER, GpuPowerModel


class TestDramPower:
    def test_mac_energy_per_command(self):
        model = DramPowerModel()
        # mac_pj_per_bit x 256 bits x 16 banks per MACab command.
        assert model.command_energy_nj(CommandType.MAC_ALL) == pytest.approx(
            GDDR6_PIM_POWER.mac_pj_per_bit * 256 * 16 * 1e-3)

    def test_mac_draws_more_current_than_a_read(self):
        p = GDDR6_PIM_POWER
        assert p.mac_pj_per_bit > 1.5 * p.read_pj_per_bit
        # The paper's headline comparison: a MAC_ABK bit costs far less than
        # the 3.97 pJ/bit of an HBM2 read on the GPU side.
        assert p.mac_pj_per_bit < 3.97 / 5

    def test_all_bank_activate_scales_with_banks(self):
        model = DramPowerModel()
        assert model.command_energy_nj(CommandType.ACT_ALL) == pytest.approx(
            16 * model.command_energy_nj(CommandType.ACT))

    def test_activity_energy_accumulates(self):
        model = DramPowerModel()
        counts = {CommandType.MAC_ALL: 1000, CommandType.ACT_ALL: 10, CommandType.PRE_ALL: 10}
        energy = model.activity_energy_j(counts)
        assert energy > 0
        breakdown = model.energy_breakdown_j(counts)
        assert breakdown["pim_ops"] > breakdown["activate_precharge"]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            DramPowerModel().activity_energy_j({CommandType.RD: -1})

    def test_average_power(self):
        model = DramPowerModel()
        counts = {CommandType.MAC_ALL: 10**6}
        power = model.average_power_w(counts, interval_s=1e-3, num_channels=32)
        assert power > model.background_power_w(32)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DramPowerParameters(mac_pj_per_bit=-1.0)


class TestControllerPower:
    def test_table5_totals(self):
        controller = CXL_CONTROLLER_28NM
        assert controller.custom_logic_area_28nm_mm2 == pytest.approx(7.84, abs=0.02)
        assert controller.custom_logic_power_w == pytest.approx(1.06, abs=0.01)

    def test_7nm_die_area_about_19mm2(self):
        assert CXL_CONTROLLER_28NM.total_area_7nm_mm2 == pytest.approx(19.0, rel=0.15)

    def test_static_power_includes_memory_controllers(self):
        controller = CxlControllerPower()
        assert controller.static_power_w() > 16 * 0.3
        assert controller.static_power_w(riscv_utilization=1.0) > controller.static_power_w(0.0)

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            CxlControllerPower().static_power_w(riscv_utilization=2.0)


class TestCentPower:
    @pytest.fixture(scope="class")
    def small_setup(self):
        from repro.models.config import ModelConfig

        model = ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                            num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)
        config = CentConfig(num_devices=4, context_samples=2)
        performance = PerformanceModel(config)
        plan = PipelineParallel(4, model)
        cost = performance.block_cost(model, plan, 512)
        return config, model, plan, cost

    def test_device_power_positive_and_bounded(self, small_setup):
        config, model, plan, cost = small_setup
        report = CentPowerModel(config).device_power(model, plan, cost)
        assert 1.0 < report.total_w < 300.0
        assert report.dram_dynamic_w > 0
        assert report.controller_w > 0

    def test_breakdown_dominated_by_pim_ops(self, small_setup):
        config, model, plan, cost = small_setup
        report = CentPowerModel(config).device_power(model, plan, cost)
        assert report.breakdown["pim_ops"] > report.breakdown["data_movement"]

    def test_system_power_includes_host(self, small_setup):
        config, model, plan, cost = small_setup
        power_model = CentPowerModel(config)
        with_host = power_model.system_power(model, plan, cost, include_host=True)
        without = power_model.system_power(model, plan, cost, include_host=False)
        assert with_host.total_w == pytest.approx(without.total_w + power_model.host_power_w)
        assert with_host.devices_used <= config.num_devices

    def test_llama7b_device_power_in_tens_of_watts(self):
        # The paper reports ~32 W per device; the reproduction should land in
        # the same order of magnitude (tens of watts, far below a 300 W GPU).
        config = CentConfig(num_devices=8, context_samples=2)
        performance = PerformanceModel(config)
        plan = PipelineParallel(8, LLAMA2_7B)
        cost = performance.block_cost(LLAMA2_7B, plan, 1024)
        report = CentPowerModel(config).device_power(LLAMA2_7B, plan, cost)
        assert 10.0 < report.total_w < 150.0


class TestGpuPower:
    def test_phase_powers(self):
        assert A100_POWER.phase_power_w("prefill") <= 300.0
        assert A100_POWER.phase_power_w("decode") > 0.9 * 300.0
        assert A100_POWER.phase_power_w("init") < A100_POWER.phase_power_w("decode")

    def test_phase_clocks_show_throttling(self):
        assert A100_POWER.phase_clock_mhz("init") == 1410.0
        assert A100_POWER.phase_clock_mhz("prefill") < A100_POWER.phase_clock_mhz("decode")

    def test_trace_phases_in_order(self):
        trace = A100_POWER.trace(init_s=1.0, prefill_s=2.0, decode_s=3.0)
        phases = [sample.phase for sample in trace]
        assert phases[0] == "init" and phases[-1] == "decode"
        assert phases.index("prefill") < phases.index("decode")

    def test_average_power_weighted(self):
        avg = A100_POWER.average_power_w(prefill_s=1.0, decode_s=9.0, num_gpus=4)
        assert 4 * 250 < avg <= 4 * 300

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            A100_POWER.phase_power_w("bogus")

    def test_custom_model(self):
        model = GpuPowerModel(tdp_w=700.0)
        assert model.phase_power_w("decode") > 600.0


class TestEnergyMetrics:
    def test_energy_per_token(self):
        assert energy_per_token(1000.0, 2000.0) == pytest.approx(0.5)

    def test_tokens_per_joule(self):
        assert tokens_per_joule(1000.0, 2000.0) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            energy_per_token(-1.0, 100.0)
        with pytest.raises(ValueError):
            tokens_per_joule(100.0, 0.0)
