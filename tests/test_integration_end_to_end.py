"""Integration tests across the full stack (compiler -> timing -> system).

These use scaled-down models and small device counts so the whole file runs
in a few seconds, while still exercising the complete pipeline the paper's
evaluation relies on: compilation, per-block simulation, parallelisation,
inference aggregation, power annotation and baseline comparison.
"""


import pytest

from repro.baselines.gpu import GPUSystem
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.mapping.parallelism import HybridParallel, PipelineParallel, TensorParallel
from repro.models.config import LLAMA2_7B, ModelConfig


@pytest.fixture(scope="module")
def model() -> ModelConfig:
    return ModelConfig(name="integration-llama", num_layers=8, d_model=1024,
                       num_heads=16, num_kv_heads=4, d_ff=2816, vocab_size=32000,
                       max_context=2048)


@pytest.fixture(scope="module")
def system(model) -> CentSystem:
    return CentSystem(CentConfig(num_devices=8, context_samples=2), model)


class TestMappingTradeoffs:
    @pytest.fixture(scope="class")
    def llama7b_system(self):
        return CentSystem(CentConfig(num_devices=8, context_samples=2), LLAMA2_7B)

    def test_throughput_vs_latency_tradeoff(self, llama7b_system):
        pp = llama7b_system.run_inference(128, 384, plan=PipelineParallel(8, LLAMA2_7B),
                                          with_power=False)
        tp = llama7b_system.run_inference(128, 384, plan=TensorParallel(8),
                                          with_power=False)
        hybrid = llama7b_system.run_inference(128, 384, plan=HybridParallel(8, 2),
                                              with_power=False)
        # Pipeline parallelism maximises throughput, tensor parallelism
        # minimises latency, the hybrid sits in between on both axes.
        assert pp.decode_throughput_tokens_per_s > hybrid.decode_throughput_tokens_per_s
        assert hybrid.decode_throughput_tokens_per_s > tp.decode_throughput_tokens_per_s
        assert tp.query_latency_s < hybrid.query_latency_s < pp.query_latency_s

    def test_cxl_share_grows_with_tp(self, llama7b_system):
        pp = llama7b_system.token_breakdown(PipelineParallel(8, LLAMA2_7B), 512).fractions()
        tp = llama7b_system.token_breakdown(TensorParallel(8), 512).fractions()
        assert tp["cxl"] > pp["cxl"]
        assert pp["pim"] > 0.5
        assert tp["pim"] > 0.25

    def test_scaling_devices_improves_throughput(self, model):
        small = CentSystem(CentConfig(num_devices=4, context_samples=2), model)
        large = CentSystem(CentConfig(num_devices=8, context_samples=2), model)
        small_result = small.run_inference(128, 384, plan=PipelineParallel(4, model),
                                           with_power=False)
        large_result = large.run_inference(128, 384, plan=PipelineParallel(8, model),
                                           with_power=False)
        assert (large_result.decode_throughput_tokens_per_s
                > small_result.decode_throughput_tokens_per_s)


class TestContextBehaviour:
    def test_longer_context_lowers_throughput(self, system, model):
        plan = PipelineParallel(8, model)
        short = system.run_inference(64, 192, plan=plan, with_power=False)
        long = system.run_inference(512, 1536, plan=plan, with_power=False)
        assert long.decode_throughput_tokens_per_s < short.decode_throughput_tokens_per_s

    def test_prefill_and_decode_throughput_similar(self, system, model):
        # CENT processes prompt tokens through the same pipeline as decode
        # tokens, so the two throughputs are of the same order (unlike GPUs).
        result = system.run_inference(256, 256, plan=PipelineParallel(8, model),
                                      with_power=False)
        ratio = (result.prefill_throughput_tokens_per_s
                 / result.decode_throughput_tokens_per_s)
        assert 0.8 < ratio < 2.0


class TestPowerIntegration:
    def test_power_scales_with_devices_used(self, model):
        system = CentSystem(CentConfig(num_devices=8, context_samples=2), model)
        result = system.run_inference(128, 384, plan=PipelineParallel(8, model))
        assert result.average_power_w > 100.0  # host + devices
        assert result.energy_per_token_j > 0
        assert result.tokens_per_joule > 0


class TestAgainstGpuBaseline:
    def test_cent_wins_decode_loses_prefill(self):
        # The paper's headline qualitative result on a small deployment:
        # CENT outperforms the GPU on memory-bound decoding, the GPU wins the
        # compute-bound prefill stage.
        cent = CentSystem(CentConfig(num_devices=8, context_samples=2), LLAMA2_7B)
        cent_result = cent.run_inference(512, 1024, plan=PipelineParallel(8, LLAMA2_7B),
                                         with_power=False)
        gpu = GPUSystem(LLAMA2_7B, num_gpus=1)
        batch = min(gpu.max_batch_size(1536), 128)
        gpu_prefill_tps = gpu.prefill_throughput(batch, 512)
        gpu_decode_tps = batch * 1024 / (
            gpu.query_latency_s(batch, 512, 1024) - gpu.prefill_latency_s(batch, 512))
        assert cent_result.decode_throughput_tokens_per_s > gpu_decode_tps
        assert cent_result.prefill_throughput_tokens_per_s < gpu_prefill_tps


class TestLongContextCapacity:
    def test_denser_modules_enable_longer_contexts(self):
        from repro.dram.geometry import ChannelGeometry
        from repro.models.config import LLAMA2_13B

        plan = PipelineParallel(8, LLAMA2_13B)
        small = CentSystem(CentConfig(num_devices=8, context_samples=2), LLAMA2_13B)
        with pytest.raises(MemoryError):
            small.run_inference(512, 3584, plan=plan, with_power=False)
        dense = CentSystem(
            CentConfig(num_devices=8, context_samples=2,
                       geometry=ChannelGeometry(bank_capacity_bytes=64 * 1024 * 1024)),
            LLAMA2_13B)
        result = dense.run_inference(512, 3584, plan=plan, with_power=False)
        assert result.decode_throughput_tokens_per_s > 0
