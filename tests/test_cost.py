"""Unit tests for the cost models (die, packaging, NRE, TCO)."""

import pytest

from repro.cost.die import DieCostModel, WaferSpec
from repro.cost.nre import NreBreakdown, NreCostModel
from repro.cost.packaging import PackagingCostModel
from repro.cost.tco import (
    CENT_SYSTEM_COST,
    GPU_SYSTEM_COST,
    SystemCost,
    TcoModel,
    cent_controller_unit_cost,
)


class TestDieCost:
    def test_dies_per_wafer_reasonable(self):
        model = DieCostModel()
        dies = model.dies_per_wafer(19.0)
        # A 300 mm wafer holds on the order of 3000 dies of ~19 mm^2.
        assert 2500 < dies < 4000

    def test_yield_decreases_with_area(self):
        model = DieCostModel()
        assert model.yield_fraction(19.0) > model.yield_fraction(400.0)
        assert 0.9 < model.yield_fraction(19.0) <= 1.0

    def test_cost_per_good_die_about_three_dollars(self):
        # Paper: $9,346 wafer, 19 mm^2 die -> a few dollars per die.
        assert 2.0 < DieCostModel().cost_per_good_die(19.0) < 5.0

    def test_larger_die_costs_more(self):
        model = DieCostModel()
        assert model.cost_per_good_die(100.0) > model.cost_per_good_die(19.0)

    def test_invalid_area_rejected(self):
        with pytest.raises(ValueError):
            DieCostModel().cost_per_good_die(0.0)

    def test_wafer_validation(self):
        with pytest.raises(ValueError):
            WaferSpec(cost_usd=0.0)


class TestPackaging:
    def test_2d_fraction(self):
        assert PackagingCostModel().package_2d(100.0) == pytest.approx(29.0)

    def test_2_5d_more_expensive_than_2d_for_small_chips(self):
        packaging = PackagingCostModel()
        assert packaging.package_2_5d(800.0, num_dies=9) > packaging.package_2d(3.0)

    def test_invalid_inputs(self):
        packaging = PackagingCostModel()
        with pytest.raises(ValueError):
            packaging.package_2d(-1.0)
        with pytest.raises(ValueError):
            packaging.package_2_5d(0.0, 1)


class TestNre:
    def test_total_in_paper_range(self):
        # Figure 12 shows a total NRE around $20-25M.
        assert 15.0 < NreBreakdown().total_musd < 30.0

    def test_amortisation(self):
        model = NreCostModel()
        assert model.per_unit_cost(3_000_000) == pytest.approx(
            NreBreakdown().total_usd / 3e6)
        assert model.per_unit_cost(1_000_000) > model.per_unit_cost(5_000_000)

    def test_cost_vs_volume_sweep(self):
        sweep = NreCostModel().cost_vs_volume([1.0, 3.0, 5.0])
        assert sorted(sweep.values(), reverse=True) == list(sweep.values())

    def test_invalid_volume(self):
        with pytest.raises(ValueError):
            NreCostModel().per_unit_cost(0)


class TestTco:
    def test_controller_unit_cost_near_paper(self):
        breakdown = cent_controller_unit_cost()
        assert breakdown["total"] == pytest.approx(11.9, rel=0.2)
        assert breakdown["total"] == pytest.approx(
            breakdown["die"] + breakdown["packaging"] + breakdown["nre"])

    def test_system_hardware_costs_match_table6(self):
        assert CENT_SYSTEM_COST.hardware_cost_usd == pytest.approx(14_873, rel=0.05)
        assert GPU_SYSTEM_COST.hardware_cost_usd == pytest.approx(42_128, rel=0.01)

    def test_owned_tco_rates_match_table4(self):
        tco = TcoModel()
        assert tco.cent_tco_per_hour(32, 1160.0, owned=True) == pytest.approx(0.73, abs=0.1)
        assert tco.gpu_tco_per_hour(4, 1400.0, owned=True) == pytest.approx(1.76, abs=0.2)

    def test_rental_tco_gpu_much_higher(self):
        tco = TcoModel()
        assert tco.gpu_tco_per_hour(4, 1400.0, owned=False) > 4.0
        assert tco.cent_tco_per_hour(32, 1160.0, owned=False) < 1.5

    def test_tokens_per_dollar(self):
        tco = TcoModel()
        assert tco.tokens_per_dollar(1000.0, 1.0) == pytest.approx(3.6e6)
        with pytest.raises(ValueError):
            tco.tokens_per_dollar(1000.0, 0.0)

    def test_operational_cost(self):
        tco = TcoModel()
        assert tco.operational_cost_per_hour(1000.0) == pytest.approx(0.139)

    def test_system_cost_validation(self):
        with pytest.raises(ValueError):
            SystemCost("bad", components_usd={"x": -1.0})
