"""Tests for closed-loop cluster control and segmented serving runs."""

import pytest

from repro.cluster import (
    MIGRATION_MODES,
    ClusterEngine,
    ClusterPlacer,
    ClusterScheduler,
    ControlConfig,
    RebalancePolicy,
    ReplicaFeedback,
    RouterState,
    TenantSpec,
    weight_reload_time_s,
)
from repro.cluster.placement import ClusterPlacement, ReplicaSpec
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.evaluation import closed_loop_study
from repro.models.config import ModelConfig
from repro.serving import RequestState, ServingEngine
from repro.workloads import (
    bursty_arrivals,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                       num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    return CentSystem(CentConfig(num_devices=2, context_samples=2), small_model)


def timed_trace(count, rate, seed=1, **kwargs):
    return with_arrivals(sharegpt_like_queries(count, seed=seed, **kwargs),
                         poisson_arrivals(count, rate, seed=seed))


# --------------------------------------------------------------------- config


class TestControlConfig:
    def test_defaults_valid(self):
        config = ControlConfig()
        assert config.rebalance == "epoch"
        assert config.migration == "live"
        assert config.routing_feedback
        assert MIGRATION_MODES == ("restart", "live")

    @pytest.mark.parametrize("kwargs", [
        {"epoch_s": 0.0},
        {"rebalance": "hourly"},
        {"migration": "teleport"},
        {"hysteresis": -0.1},
        {"min_epochs_between": -1},
        {"lookahead_epochs": 0},
        {"feedback_alpha": 0.0},
        {"feedback_alpha": 1.5},
        {"max_epochs": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ControlConfig(**kwargs)

    def test_unknown_rebalance_mode_on_run(self, small_model):
        tenant = TenantSpec("t", model=small_model, trace=timed_trace(3, 5.0))
        engine = ClusterEngine(CentConfig(num_devices=2, context_samples=2),
                               [tenant], context_step=512)
        with pytest.raises(ValueError, match="rebalance mode"):
            engine.run(rebalance="sometimes")


# ------------------------------------------------------------------- feedback


class TestReplicaFeedback:
    def test_drain_time(self):
        observed = ReplicaFeedback(outstanding_tokens=500.0,
                                   observed_tokens_per_s=100.0)
        assert observed.drain_s() == pytest.approx(5.0)

    def test_falls_back_to_estimate(self):
        observed = ReplicaFeedback(outstanding_tokens=500.0,
                                   estimated_tokens_per_s=50.0)
        assert observed.drain_s() == pytest.approx(10.0)

    def test_stuck_backlog_is_infinite(self):
        assert ReplicaFeedback(outstanding_tokens=1.0).drain_s() == float("inf")

    def test_empty_backlog_costs_only_the_stall(self):
        assert ReplicaFeedback().drain_s() == 0.0
        assert ReplicaFeedback(extra_delay_s=2.0).drain_s() == 2.0

    def test_stall_delays_drain(self):
        observed = ReplicaFeedback(outstanding_tokens=100.0,
                                   observed_tokens_per_s=100.0,
                                   extra_delay_s=3.0)
        assert observed.drain_s() == pytest.approx(4.0)


def make_placement(model, tenant_names, sizes):
    replicas = []
    offset = 0
    for index, (names, size) in enumerate(zip(tenant_names, sizes, strict=True)):
        replicas.append(ReplicaSpec(replica_id=index, tenant_names=names,
                                    model=model, num_devices=size,
                                    first_device=offset))
        offset += size
    devices = {}
    for spec in replicas:
        for name in spec.tenant_names:
            devices[name] = devices.get(name, 0) + spec.num_devices
    return ClusterPlacement(policy="static", pool_devices=offset,
                            replicas=tuple(replicas), tenant_devices=devices)


class TestFeedbackRouting:
    def test_feedback_reanchors_backlog(self, small_model):
        """A replica the open-loop model thinks idle but that measures a deep
        backlog must lose least_outstanding traffic after feedback."""
        trace = timed_trace(6, 100.0)
        tenant = TenantSpec("t", model=small_model, trace=trace)
        placement = make_placement(small_model, [("t",), ("t",)], [1, 1])
        scheduler = ClusterScheduler("least_outstanding")

        def estimator(spec, query):
            return 0.01

        # Open loop: traffic alternates between the two replicas.
        open_plan = scheduler.route([tenant], placement, estimator)
        assert open_plan.assignments[0] and open_plan.assignments[1]

        # Closed loop: replica 0 reports a huge measured backlog.
        state = RouterState()
        feedback = {0: ReplicaFeedback(outstanding_tokens=1e6,
                                       observed_tokens_per_s=1.0),
                    1: ReplicaFeedback()}
        stream = [(q, "t") for q in trace]
        closed_plan = scheduler.route_window(
            [tenant], placement, estimator, stream=stream, state=state,
            feedback=feedback, window_start_s=0.0)
        assert not closed_plan.assignments[0]
        assert len(closed_plan.assignments[1]) == len(trace)

    def test_route_window_carries_state(self, small_model):
        """Two windows routed with carried state equal one open-loop pass."""
        trace = timed_trace(10, 50.0)
        tenant = TenantSpec("t", model=small_model, trace=trace)
        placement = make_placement(small_model, [("t",), ("t",)], [1, 1])
        scheduler = ClusterScheduler("least_outstanding")

        def estimator(spec, query):
            return query.total_context / 1000.0

        whole = scheduler.route([tenant], placement, estimator)

        state = RouterState()
        split = len(trace) // 2
        ordered = sorted(trace, key=lambda q: q.arrival_time_s)
        first = scheduler.route_window(
            [tenant], placement, estimator,
            stream=[(q, "t") for q in ordered[:split]], state=state)
        second = scheduler.route_window(
            [tenant], placement, estimator,
            stream=[(q, "t") for q in ordered[split:]], state=state)
        for replica_id in (0, 1):
            joined = first.assignments[replica_id] + second.assignments[replica_id]
            assert joined == whole.assignments[replica_id]

    def test_admission_cap_carries_across_windows(self, small_model):
        trace = timed_trace(8, 1000.0)
        tenant = TenantSpec("t", model=small_model, trace=trace,
                            max_outstanding=2)
        placement = make_placement(small_model, [("t",)], [1])
        scheduler = ClusterScheduler("least_outstanding")

        def estimator(spec, query):
            return 1e6  # nothing ever drains

        whole = scheduler.route([tenant], placement, estimator)
        state = RouterState()
        ordered = sorted(trace, key=lambda q: q.arrival_time_s)
        windows = [ordered[:3], ordered[3:5], ordered[5:]]
        routed = rejected = 0
        for window in windows:
            plan = scheduler.route_window(
                [tenant], placement, estimator,
                stream=[(q, "t") for q in window], state=state)
            routed += plan.accounting["t"].routed
            rejected += plan.accounting["t"].rejected
        assert routed == whole.accounting["t"].routed == 2
        assert rejected == whole.accounting["t"].rejected == len(trace) - 2

    def test_empty_replica_list_raises_clear_error(self, small_model):
        """Regression: a tenant whose replica list is empty must fail loudly,
        not have its requests silently dropped or die on a bare KeyError."""
        served = TenantSpec("served", model=small_model, trace=timed_trace(2, 5.0))
        orphan = TenantSpec("orphan", model=small_model,
                            trace=timed_trace(2, 5.0, seed=2),
                            max_outstanding=1)
        placement = make_placement(small_model, [("served",)], [2])
        scheduler = ClusterScheduler("least_outstanding")
        with pytest.raises(ValueError, match="no replica serves tenant 'orphan'"):
            scheduler.route([served, orphan], placement, lambda spec, q: 0.1)


# ------------------------------------------------------------------ rebalance


class TestRebalancePolicy:
    @staticmethod
    def capability(names, devices):
        return 100.0 * devices

    def make_policy(self, small_model, **overrides):
        config = ControlConfig(epoch_s=10.0, **overrides)
        placer = ClusterPlacer("proportional")
        link = CentConfig(num_devices=4).link
        return RebalancePolicy(config, placer=placer,
                               capability_tokens_per_s=self.capability,
                               link=link)

    def make_tenants(self, small_model):
        return [TenantSpec("a", model=small_model, trace=timed_trace(4, 5.0)),
                TenantSpec("b", model=small_model,
                           trace=timed_trace(4, 5.0, seed=2))]

    def test_holds_when_demand_matches_placement(self, small_model):
        policy = self.make_policy(small_model)
        tenants = self.make_tenants(small_model)
        current = policy.placer.place(tenants, 4, weights={"a": 1.0, "b": 1.0})
        decision = policy.decide(tenants, 4, current,
                                 {"a": 100.0, "b": 100.0})
        assert decision is None

    def test_rebalances_toward_observed_demand(self, small_model):
        policy = self.make_policy(small_model)
        tenants = self.make_tenants(small_model)
        current = policy.placer.place(tenants, 6, weights={"a": 1.0, "b": 1.0})
        assert current.tenant_devices == {"a": 3, "b": 3}
        decision = policy.decide(tenants, 6, current,
                                 {"a": 1e6, "b": 0.0})
        assert decision is not None
        assert decision.placement.tenant_devices["a"] > 3
        assert decision.projected_gain_tokens > decision.migration_cost_tokens
        assert decision.stall_s > 0
        assert decision.rebuilt_replica_ids

    def test_hysteresis_blocks_marginal_gains(self, small_model):
        eager = self.make_policy(small_model, hysteresis=0.0)
        tenants = self.make_tenants(small_model)
        current = eager.placer.place(tenants, 6, weights={"a": 1.0, "b": 1.0})
        # Demand slightly above the even split: the shift gains a little.
        demand = {"a": 320.0, "b": 280.0}
        moved = eager.decide(tenants, 6, current, demand)
        wary = self.make_policy(small_model, hysteresis=1e6)
        held = wary.decide(tenants, 6, current, demand)
        assert held is None
        # The eager policy may or may not move on this margin, but a zero
        # hysteresis can never be stricter than an enormous one.
        if moved is None:
            assert held is None

    def test_weight_reload_faster_with_more_devices(self, small_model):
        link = CentConfig(num_devices=8).link
        one = weight_reload_time_s(
            ReplicaSpec(0, ("t",), small_model, 1, 0), link)
        four = weight_reload_time_s(
            ReplicaSpec(0, ("t",), small_model, 4, 0), link)
        assert one > four > 0


class TestPlacementWeights:
    def test_explicit_weights_steer_spare_devices(self, small_model):
        placer = ClusterPlacer("static")
        a = TenantSpec("a", model=small_model, trace=timed_trace(4, 5.0))
        b = TenantSpec("b", model=small_model, trace=timed_trace(4, 5.0, seed=2))
        skewed = placer.place([a, b], 6, weights={"a": 10.0, "b": 0.0})
        assert skewed.tenant_devices["a"] > skewed.tenant_devices["b"]
        assert skewed.tenant_devices["b"] >= 1  # floor still honoured

    def test_all_zero_weights_fall_back_to_even(self, small_model):
        placer = ClusterPlacer("static")
        a = TenantSpec("a", model=small_model, trace=timed_trace(4, 5.0))
        b = TenantSpec("b", model=small_model, trace=timed_trace(4, 5.0, seed=2))
        even = placer.place([a, b], 6, weights={"a": 0.0, "b": 0.0})
        assert even.tenant_devices == {"a": 3, "b": 3}

    def test_weights_validation(self, small_model):
        placer = ClusterPlacer("static")
        a = TenantSpec("a", model=small_model, trace=timed_trace(4, 5.0))
        b = TenantSpec("b", model=small_model, trace=timed_trace(4, 5.0, seed=2))
        with pytest.raises(ValueError, match="missing"):
            placer.place([a, b], 6, weights={"a": 1.0})
        with pytest.raises(ValueError, match="finite"):
            placer.place([a, b], 6, weights={"a": 1.0, "b": -2.0})


# ------------------------------------------------------------ segmented engine


class TestSegmentedEngine:
    @pytest.mark.parametrize("admission", ["reserve", "paged"])
    def test_segmented_full_trace_matches_simulate(self, system, admission):
        engine = ServingEngine(system, context_step=512, admission=admission,
                               memory_capacity_bytes=system.memory_capacity_bytes // 4)
        trace = timed_trace(20, 8.0)
        whole = engine.simulate(trace, sla_latency_s=30.0)

        state = engine.begin(trace, sla_latency_s=30.0)
        boundary = 0.0
        for _ in range(200):
            if state.drained:
                break
            boundary += 1.0
            engine.advance(state, until_s=boundary)
        assert state.drained
        segmented = engine.snapshot(state)

        assert segmented.makespan_s == whole.makespan_s
        assert segmented.prefill_time_s == whole.prefill_time_s
        assert segmented.decode_time_s == whole.decode_time_s
        assert segmented.decode_step_tokens == whole.decode_step_tokens
        assert segmented.peak_memory_bytes == whole.peak_memory_bytes
        assert list(segmented.queue_depth_timeline) == \
            list(whole.queue_depth_timeline)
        assert segmented.preemption_log == whole.preemption_log
        for ours, theirs in zip(state.requests, whole.requests, strict=True):
            assert ours.state is theirs.state
            assert ours.finish_time_s == theirs.finish_time_s
            assert ours.first_token_time_s == theirs.first_token_time_s
            assert ours.tbt_samples_s == theirs.tbt_samples_s

    @pytest.mark.parametrize("admission", ["reserve", "paged"])
    def test_epoch_fed_arrivals_match_simulate(self, system, admission):
        engine = ServingEngine(system, context_step=512, admission=admission,
                               memory_capacity_bytes=system.memory_capacity_bytes // 4)
        trace = timed_trace(20, 8.0)
        whole = engine.simulate(trace)

        ordered = sorted(trace, key=lambda q: q.arrival_time_s)
        state = engine.begin([], planning_trace=trace)
        boundary, fed = 0.0, 0
        for _ in range(200):
            boundary += 1.0
            while fed < len(ordered) and ordered[fed].arrival_time_s < boundary:
                engine.extend(state, [ordered[fed]])
                fed += 1
            engine.advance(state, until_s=boundary)
            if fed == len(ordered) and state.drained:
                break
        assert state.drained
        segmented = engine.snapshot(state)
        assert segmented.makespan_s == whole.makespan_s
        assert segmented.decode_step_tokens == whole.decode_step_tokens
        finishes = sorted(r.finish_time_s for r in state.requests
                          if r.finish_time_s is not None)
        expected = sorted(r.finish_time_s for r in whole.requests
                          if r.finish_time_s is not None)
        assert finishes == expected

    def test_advance_at_reached_bound_is_a_no_op(self, system):
        engine = ServingEngine(system, context_step=512)
        state = engine.begin(timed_trace(4, 5.0))
        engine.advance(state, until_s=0.0)
        before = engine.snapshot(state)
        assert before.makespan_s == 0.0
        engine.advance(state)
        assert state.drained

    def test_extend_rejects_context_beyond_planning_trace(self, system):
        engine = ServingEngine(system, context_step=512)
        short = timed_trace(4, 5.0, max_context=256)
        state = engine.begin([], planning_trace=short)
        with pytest.raises(ValueError, match="planning_trace"):
            engine.extend(state, timed_trace(1, 5.0, max_context=2048))

    def test_begin_empty_without_planning_trace_raises(self, system):
        engine = ServingEngine(system, context_step=512)
        with pytest.raises(ValueError, match="at least one query"):
            engine.begin([])

    def test_unfinished_tracks_migratable_work(self, system):
        engine = ServingEngine(system, context_step=512)
        state = engine.begin(timed_trace(6, 5.0))
        assert len(state.unfinished) == 6
        engine.advance(state)
        assert state.unfinished == []


# -------------------------------------------------------------- live migration


class TestEngineMigration:
    """migrate_out / migrate_in: the engine-level live-migration primitive."""

    def make_engine(self, small_model, admission):
        system = CentSystem(CentConfig(num_devices=2, context_samples=2),
                            small_model)
        return ServingEngine(
            system, context_step=512, admission=admission,
            memory_capacity_bytes=system.memory_capacity_bytes // 4)

    @pytest.mark.parametrize("admission", ["reserve", "paged"])
    def test_migration_preserves_progress_and_original_arrival(
            self, small_model, admission):
        """Satellite regression: a request moved after a re-placement keeps
        its *original* arrival time in TTFT/latency/SLA accounting, and its
        decode resumes at the migrated token instead of restarting."""
        source = self.make_engine(small_model, admission)
        target = self.make_engine(small_model, admission)
        trace = timed_trace(25, 300.0)
        state_a = source.begin(trace)
        source.advance(state_a, until_s=0.05)
        movable = [r for r in state_a.unfinished
                   if r.context_length > 0 and r.restore_remaining == 0]
        assert movable, "the cut must strand in-flight work"

        state_b = target.begin([], planning_trace=trace)
        state_b.clock = 0.05
        landed = []
        for request in movable:
            snapshot = (request.query.arrival_time_s, request.tokens_generated,
                        request.first_token_time_s, list(request.tbt_samples_s))
            moved = source.migrate_out(state_a, request, now_s=0.05)
            migrated = target.migrate_in(state_b, moved, now_s=0.05)
            assert request.state is RequestState.MIGRATED
            assert request not in state_a.unfinished
            assert migrated.arrival_time_s == snapshot[0]
            assert migrated.tokens_generated == snapshot[1]
            assert migrated.first_token_time_s == snapshot[2]
            assert migrated.tbt_samples_s == snapshot[3]
            assert migrated.migrated_count == 1
            assert migrated.migrated_kv_bytes == moved.swap_bytes > 0
            landed.append((migrated, snapshot))
        for request in state_a.unfinished:
            target.extend(state_b, [request.query])
        target.advance(state_b)
        assert state_b.drained
        for migrated, snapshot in landed:
            assert migrated.state is RequestState.FINISHED
            # Exactly decode_tokens generated across both engines: the
            # pre-migration tokens were never re-emitted.
            assert migrated.tokens_generated == migrated.query.decode_tokens
            # Latency spans from the ORIGINAL arrival (before the cut).
            assert migrated.latency_s == pytest.approx(
                migrated.finish_time_s - snapshot[0])
            # The move itself was priced: a swap-in and off-device stall.
            assert migrated.num_swap_ins >= 1
            assert migrated.stall_s > 0

    def test_restarted_request_keeps_original_arrival(self, small_model):
        """Satellite regression for the restart path: re-feeding the query
        into a fresh engine keeps the original arrival, so TTFT counts the
        whole disruption, not just the post-restart wait."""
        engine = self.make_engine(small_model, "reserve")
        query = timed_trace(1, 5.0)[0]
        state = engine.begin([], planning_trace=[query])
        state.clock = 3.0                      # the re-placement instant
        engine.extend(state, [query])
        engine.advance(state)
        request = state.requests[0]
        assert request.state is RequestState.FINISHED
        assert request.arrival_time_s == query.arrival_time_s
        # The pre-restart queueing shows up in the measured TTFT.
        assert request.ttft_s >= 3.0 - query.arrival_time_s

    def test_migrate_out_refuses_unmovable_requests(self, small_model):
        engine = self.make_engine(small_model, "paged")
        trace = timed_trace(4, 50.0)
        state = engine.begin(trace)
        engine.advance(state)
        finished = state.requests[0]
        with pytest.raises(ValueError, match="only in-flight"):
            engine.migrate_out(state, finished, now_s=1.0)

    @pytest.mark.parametrize("admission", ["reserve", "paged"])
    def test_migration_is_deterministic(self, small_model, admission):
        def run_once():
            source = self.make_engine(small_model, admission)
            target = self.make_engine(small_model, admission)
            trace = timed_trace(25, 300.0)
            state_a = source.begin(trace)
            source.advance(state_a, until_s=0.05)
            state_b = target.begin([], planning_trace=trace)
            state_b.clock = 0.05
            for request in list(state_a.unfinished):
                if request.context_length > 0 and request.restore_remaining == 0:
                    moved = source.migrate_out(state_a, request, now_s=0.05)
                    target.migrate_in(state_b, moved, now_s=0.05)
                else:
                    target.extend(state_b, [request.query])
            target.advance(state_b)
            return sorted((r.request_id, r.finish_time_s)
                          for r in state_b.requests
                          if r.finish_time_s is not None)
        assert run_once() == run_once()


class TestClusterLiveMigration:
    """The closed loop's migration="live" vs the PR-4 restart behaviour."""

    def make_engine(self, small_model, num_devices=6):
        config = CentConfig(num_devices=num_devices, context_samples=2)
        tenants = [
            TenantSpec("early", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=5),
                           bursty_arrivals(30, 400.0, seed=5))),
            TenantSpec("late", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=6),
                           bursty_arrivals(30, 400.0, seed=6, start_s=0.3))),
        ]
        return ClusterEngine(config, tenants, context_step=512)

    @pytest.fixture(scope="class")
    def live_result(self, small_model):
        return self.make_engine(small_model).run(rebalance="epoch",
                                                 epoch_s=0.05)

    @pytest.fixture(scope="class")
    def restart_result(self, small_model):
        return self.make_engine(small_model).run(rebalance="epoch",
                                                 epoch_s=0.05,
                                                 migration="restart")

    def test_live_is_the_default_and_actually_migrates(self, live_result):
        assert live_result.num_rebalances >= 1
        assert live_result.num_migrated_requests > 0
        assert live_result.migrated_kv_bytes > 0
        assert live_result.kv_migration_time_s > 0
        assert live_result.restored_progress_tokens > 0

    def test_migration_counters_propagate_to_tenant_results(self, live_result):
        migrated_in = sum(r.num_migrated_in
                          for r in live_result.tenant_results.values())
        assert migrated_in >= live_result.num_migrated_requests > 0
        assert sum(r.migrated_kv_bytes
                   for r in live_result.tenant_results.values()) \
            >= live_result.migrated_kv_bytes

    def test_live_conserves_requests(self, live_result):
        for result in live_result.tenant_results.values():
            assert result.num_requests == 30
            assert result.num_completed + result.num_rejected == 30

    def test_restart_mode_reports_zero_migration(self, restart_result):
        assert restart_result.num_rebalances >= 1
        assert restart_result.num_migrated_requests == 0
        assert restart_result.migrated_kv_bytes == 0
        assert restart_result.kv_migration_time_s == 0.0
        assert restart_result.restored_progress_tokens == 0
        for result in restart_result.tenant_results.values():
            assert result.num_migrated_in == 0
            assert result.num_completed + result.num_rejected == 30

    def test_live_beats_restart_on_the_bursty_mix(self, live_result,
                                                  restart_result):
        """The tentpole claim at test scale: keeping in-flight KV across a
        re-placement delivers strictly more SLA goodput than restarting."""
        assert live_result.aggregate_goodput_tokens_per_s > \
            restart_result.aggregate_goodput_tokens_per_s

    def test_restart_mode_is_deterministic(self, small_model, restart_result):
        again = self.make_engine(small_model).run(rebalance="epoch",
                                                  epoch_s=0.05,
                                                  migration="restart")
        assert again == restart_result

    def test_live_mode_is_deterministic(self, small_model, live_result):
        again = self.make_engine(small_model).run(rebalance="epoch",
                                                  epoch_s=0.05,
                                                  migration="live")
        assert again == live_result

    def test_migration_study_reports_the_gain(self, small_model):
        from repro.evaluation import migration_study
        study = migration_study(model=small_model, num_devices=6,
                                queries_per_tenant=30, context_samples=2)
        by_mode = {row["mode"]: row for row in study["rows"]}
        assert set(by_mode) == {"restart", "live"}
        assert study["best_mode"] == "live"
        assert study["live_gain"] > 1.0
        assert by_mode["live"]["num_migrated_requests"] > 0
        assert by_mode["restart"]["num_migrated_requests"] == 0

    def test_migration_param_validation(self, small_model):
        engine = self.make_engine(small_model)
        with pytest.raises(ValueError, match="not.*both"):
            engine.run(rebalance="epoch", migration="live",
                       control=ControlConfig())
        with pytest.raises(ValueError, match="closed-loop"):
            engine.run(migration="live")
        with pytest.raises(ValueError, match="migration mode"):
            engine.run(rebalance="epoch", migration="teleport")

    def test_cluster_result_migration_validation(self):
        from repro.core.results import ClusterResult
        with pytest.raises(ValueError, match="migration accounting"):
            ClusterResult("static", "round_robin", 2, 2, 1.0,
                          num_migrated_requests=-1)
        with pytest.raises(ValueError, match="migration accounting"):
            ClusterResult("static", "round_robin", 2, 2, 1.0,
                          migrated_kv_bytes=-5)


# ----------------------------------------------------------------- closed loop


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def study(self, small_model):
        return closed_loop_study(model=small_model, num_devices=6,
                                 queries_per_tenant=50, context_samples=2)

    def test_closed_loop_beats_static_on_bursty_mix(self, study):
        by_mode = {row["mode"]: row for row in study["rows"]}
        static = by_mode["static_sla_aware"]
        closed = by_mode["closed_loop"]
        assert closed["aggregate_goodput_tokens_per_s"] > \
            static["aggregate_goodput_tokens_per_s"]
        assert study["best_mode"] == "closed_loop"
        assert study["closed_loop_gain"] > 1.0

    def test_closed_loop_actually_rebalanced(self, study):
        by_mode = {row["mode"]: row for row in study["rows"]}
        closed = by_mode["closed_loop"]
        assert closed["num_rebalances"] >= 1
        assert closed["migration_stall_s"] > 0.0
        assert by_mode["static_sla_aware"]["num_rebalances"] == 0

    def test_static_path_is_bit_exact(self, study):
        assert study["static_bit_exact"] is True

    def test_epoch_timeline_recorded(self, study):
        timeline = study["epoch_timeline"]
        assert len(timeline) >= 2
        starts = [row[0] for row in timeline]
        assert starts == sorted(starts)
        assert all(goodput >= 0 and backlog >= 0
                   for _, goodput, backlog in timeline)
        # Some epoch saw a measured backlog: the mix overloads the pool.
        assert any(backlog > 0 for _, _, backlog in timeline)

    def test_rebalance_off_matches_open_loop_run(self, small_model):
        burst = with_arrivals(
            sharegpt_like_queries(20, seed=3),
            bursty_arrivals(20, 30.0, burstiness=4.0, seed=3))
        trickle = with_arrivals(
            sharegpt_like_queries(10, seed=4),
            poisson_arrivals(10, 2.0, seed=4))
        tenants = [TenantSpec("burst", model=small_model, trace=burst,
                              sla_latency_s=5.0),
                   TenantSpec("trickle", model=small_model, trace=trickle)]
        engine = ClusterEngine(CentConfig(num_devices=4, context_samples=2),
                               tenants, context_step=512)
        legacy = engine.run(placement_policy="proportional")
        off = engine.run(placement_policy="proportional", rebalance="off")
        assert legacy == off
        assert legacy.epoch_s is None
        assert legacy.num_rebalances == 0
        assert legacy.epoch_timeline == ()

    def test_closed_loop_conserves_requests(self, small_model):
        study = closed_loop_study(model=small_model, num_devices=6,
                                  queries_per_tenant=30, context_samples=2)
        assert study["rows"]  # ran
        # Re-run the closed loop directly and check per-tenant accounting.
        config = CentConfig(num_devices=6, context_samples=2)
        tenants = [
            TenantSpec("early", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=5),
                           bursty_arrivals(30, 400.0, seed=5))),
            TenantSpec("late", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=6),
                           bursty_arrivals(30, 400.0, seed=6, start_s=0.3))),
        ]
        engine = ClusterEngine(config, tenants, context_step=512)
        result = engine.run(rebalance="epoch", epoch_s=0.05)
        for tenant in tenants:
            tenant_result = result.tenant_results[tenant.name]
            assert tenant_result.num_requests == len(tenant.trace)
            assert (tenant_result.num_completed + tenant_result.num_rejected
                    <= tenant_result.num_requests)
            # Everything eventually drains: nothing is silently lost.
            assert tenant_result.num_completed + tenant_result.num_rejected \
                == tenant_result.num_requests

    def test_closed_loop_determinism(self, small_model):
        config = CentConfig(num_devices=6, context_samples=2)

        def build():
            tenants = [
                TenantSpec("early", model=small_model, sla_latency_s=0.2,
                           trace=with_arrivals(
                               sharegpt_like_queries(20, seed=7),
                               bursty_arrivals(20, 300.0, seed=7))),
                TenantSpec("late", model=small_model, sla_latency_s=0.2,
                           trace=with_arrivals(
                               sharegpt_like_queries(20, seed=8),
                               bursty_arrivals(20, 300.0, seed=8, start_s=0.25))),
            ]
            return ClusterEngine(config, tenants, context_step=512)

        first = build().run(rebalance="epoch", epoch_s=0.05)
        second = build().run(rebalance="epoch", epoch_s=0.05)
        assert first == second

    def test_serve_cluster_passthrough(self, small_model):
        tenants = [TenantSpec("a", model=small_model,
                              trace=timed_trace(6, 50.0, seed=9)),
                   TenantSpec("b", model=small_model,
                              trace=timed_trace(6, 50.0, seed=10))]
        system = CentSystem(CentConfig(num_devices=4, context_samples=2),
                            small_model)
        result = system.serve_cluster(tenants, rebalance="epoch", epoch_s=0.5,
                                      context_step=512)
        assert result.epoch_s == 0.5
        assert result.num_rebalances >= 0
        control = ControlConfig(epoch_s=0.5, rebalance="off",
                                routing_feedback=True)
        ablation = system.serve_cluster(tenants, control=control,
                                        context_step=512)
        assert ablation.num_rebalances == 0
        assert ablation.epoch_s == 0.5

    def test_aliased_query_objects_are_all_accounted(self, small_model):
        """Regression: a trace aliasing one Query object many times must not
        collapse the closed loop's per-request accounting."""
        from repro.workloads import Query
        shared = Query(64, 32, arrival_time_s=0.0)
        tenants = [TenantSpec("alias", model=small_model,
                              trace=[shared] * 12, sla_latency_s=5.0),
                   TenantSpec("other", model=small_model,
                              trace=timed_trace(4, 50.0, seed=11))]
        engine = ClusterEngine(CentConfig(num_devices=4, context_samples=2),
                               tenants, context_step=512)
        result = engine.run(rebalance="epoch", epoch_s=0.5)
        aliased = result.tenant_results["alias"]
        assert aliased.num_requests == 12
        assert aliased.num_completed + aliased.num_rejected == 12

    def test_idle_gap_is_fast_forwarded(self, small_model):
        """A long idle gap between bursts must not grind one empty epoch row
        per interval (nor inflate the epoch timeline)."""
        gap_s = 1000.0
        tenants = [
            TenantSpec("early", model=small_model,
                       trace=timed_trace(5, 100.0, seed=12)),
            TenantSpec("late", model=small_model,
                       trace=with_arrivals(
                           sharegpt_like_queries(5, seed=13),
                           poisson_arrivals(5, 100.0, seed=13,
                                            start_s=gap_s))),
        ]
        engine = ClusterEngine(CentConfig(num_devices=4, context_samples=2),
                               tenants, context_step=512)
        result = engine.run(rebalance="epoch", epoch_s=0.5)
        # Without the fast-forward the gap alone would produce ~2000 rows.
        assert len(result.epoch_timeline) < 100
        for tenant in tenants:
            assert result.tenant_results[tenant.name].num_completed == 5

    def test_max_epochs_cutoff_still_routes_the_tail(self, small_model):
        """Hitting the epoch safety bound must drain the unrouted tail, not
        silently drop it from the per-tenant accounting."""
        tenants = [TenantSpec("t", model=small_model,
                              trace=timed_trace(10, 2.0, seed=14))]
        engine = ClusterEngine(CentConfig(num_devices=2, context_samples=2),
                               [tenants[0]], context_step=512)
        control = ControlConfig(epoch_s=0.05, max_epochs=3)
        result = engine.run(control=control)
        served = result.tenant_results["t"]
        assert served.num_completed + served.num_rejected == 10

    def test_epoch_s_conflicts_with_explicit_control(self, small_model):
        tenant = TenantSpec("t", model=small_model, trace=timed_trace(3, 5.0))
        engine = ClusterEngine(CentConfig(num_devices=2, context_samples=2),
                               [tenant], context_step=512)
        with pytest.raises(ValueError, match="not both"):
            engine.run(rebalance="epoch", epoch_s=1.0,
                       control=ControlConfig())

    def test_cluster_result_rebalance_validation(self):
        from repro.core.results import ClusterResult
        with pytest.raises(ValueError, match="epoch_s"):
            ClusterResult("static", "round_robin", 2, 2, 1.0, epoch_s=0.0)
        with pytest.raises(ValueError):
            ClusterResult("static", "round_robin", 2, 2, 1.0, num_rebalances=-1)
        with pytest.raises(ValueError):
            ClusterResult("static", "round_robin", 2, 2, 1.0,
                          migration_stall_s=-0.5)
