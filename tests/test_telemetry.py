"""The unified telemetry layer: recording, derived views, exporters.

The heart of the suite is the trace-equivalence contract: the vectorized
engine (event-horizon fast-forward, coalesced window spans) and the scalar
reference loop must emit **identical** event streams, and attaching a
recorder must never change the simulated outcome.  The rest covers the
metrics registry, the Perfetto/JSONL exporters, the ``python -m
repro.telemetry`` summaries, and the cluster-level control-plane trace
(epoch spans, rebalance decisions, live-migration correlation events).
"""

import json

import pytest

from repro.cluster import ClusterEngine, TenantSpec
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving import ServingEngine
from repro.telemetry import (
    MetricsRegistry,
    TraceRecorder,
    epoch_audit,
    overview,
    perfetto_trace,
    preemption_chains,
    read_jsonl,
    request_timeline,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.__main__ import main as telemetry_cli
from repro.telemetry.recorder import TraceEvent
from repro.workloads import (
    bursty_arrivals,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024,
                       num_heads=16, num_kv_heads=4, d_ff=2816,
                       vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    return CentSystem(CentConfig(num_devices=2, context_samples=2),
                      small_model)


def timed_trace(count, rate, seed=1, **kwargs):
    return with_arrivals(sharegpt_like_queries(count, seed=seed, **kwargs),
                         poisson_arrivals(count, rate, seed=seed))


@pytest.fixture(scope="module")
def tight_capacity(small_model):
    """Capacity for ~2 full contexts: paged admission must preempt."""
    profile = ModelMemoryProfile(small_model)
    return int(profile.parameter_bytes
               + 2.2 * profile.kv_cache_bytes_per_query(512))


def preempting_trace():
    return fixed_queries(8, prompt_tokens=256, decode_tokens=256)


#: Same matrix as tests/test_vectorized_engine.py: every admission /
#: restore / interleave combination the engine supports.
SCENARIOS = {
    "reserve": dict(admission="reserve"),
    "reserve_interleave": dict(admission="reserve", interleave_prefill=True),
    "paged_swap": dict(admission="paged", preemption_restore="swap"),
    "paged_recompute": dict(admission="paged",
                            preemption_restore="recompute"),
    "paged_partial_eviction": dict(admission="paged",
                                   preemption_restore="swap",
                                   preemption_partial_blocks=2),
    "paged_interleave": dict(admission="paged", preemption_restore="swap",
                             interleave_prefill=True),
}


def make_engine(system, kwargs, *, vectorize, pressure=False):
    extra = {}
    if pressure:
        extra["memory_capacity_bytes"] = system.memory_capacity_bytes // 4
    return ServingEngine(system, context_step=512, vectorize=vectorize,
                         **kwargs, **extra)


def traced_stream(engine, trace, *, until_points=()):
    """Run the engine with a recorder attached; return (events, recorder).

    ``events`` is the flat, fully-ordered event list — scope name included —
    so two streams compare exactly (TraceEvent equality covers name,
    timestamp, duration, request id and every arg).
    """
    recorder = TraceRecorder()
    state = engine.begin(trace, telemetry=recorder)
    for until_s in until_points:
        engine.advance(state, until_s=until_s)
    engine.advance(state)
    recorder.finalize()
    return ([(scope.name, event)
             for scope, event in recorder.iter_events()], recorder)


# --------------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counters_are_monotonic(self):
        metrics = MetricsRegistry()
        metrics.inc("serving.preemptions")
        metrics.inc("serving.preemptions", 2)
        assert metrics.value("serving.preemptions") == 3
        metrics.set_counter("serving.preemptions", 5)
        with pytest.raises(ValueError):
            metrics.set_counter("serving.preemptions", 4)
        with pytest.raises(ValueError):
            metrics.inc("serving.preemptions", -1)

    def test_gauges_move_freely(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("kv.pool_occupancy", 0.9)
        metrics.set_gauge("kv.pool_occupancy", 0.2)
        assert metrics.value("kv.pool_occupancy") == 0.2

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
            metrics.observe("serving.ttft_s", value)
        snapshot = metrics.snapshot(10.0, record=False)
        values = snapshot.as_dict()
        assert values["serving.ttft_s.count"] == 5
        assert values["serving.ttft_s.max"] == 100.0
        assert values["serving.ttft_s.p50"] == 3.0
        assert values["serving.ttft_s.mean"] == pytest.approx(22.0)

    def test_snapshot_timeline(self):
        metrics = MetricsRegistry()
        metrics.inc("cluster.rebalances")
        first = metrics.snapshot(1.0)
        metrics.inc("cluster.rebalances")
        second = metrics.snapshot(2.0)
        assert metrics.timeline_tuple() == (first, second)
        assert first["cluster.rebalances"] == 1
        assert second["cluster.rebalances"] == 2
        assert first.ts_s == 1.0


# -------------------------------------------------------------------- recorder


class TestRecorder:
    def test_window_coalescing_merges_contiguous_steps(self):
        scope = TraceRecorder().scope("engine")
        key = ((1, 2), ())
        scope.window_step("decode", key, 0.0, 0.5, 1, 0)
        scope.window_step("decode", key, 0.5, 1.0, 1, 0)
        scope.window_step("decode", key, 1.0, 1.5, 1, 0)
        scope.flush()
        assert len(scope.events) == 1
        span = scope.events[0]
        assert span.name == "engine.decode_window"
        assert (span.ts_s, span.dur_s) == (0.0, 1.5)
        assert span.args["steps"] == 3
        assert span.args["decode_batch"] == (1, 2)

    def test_window_flushes_on_batch_change_or_clock_gap(self):
        scope = TraceRecorder().scope("engine")
        scope.window_step("decode", ((1,), ()), 0.0, 0.5, 1, 0)
        scope.window_step("decode", ((1, 2), ()), 0.5, 1.0, 1, 0)  # batch
        scope.window_step("decode", ((1, 2), ()), 2.0, 2.5, 1, 0)  # gap
        scope.flush()
        assert [e.dur_s for e in scope.events] == [0.5, 0.5, 0.5]

    def test_fast_forward_and_scalar_windows_collapse_identically(self):
        """One window_step of k steps == k contiguous single-step calls."""
        ff = TraceRecorder().scope("engine")
        ff.window_step("decode", ((7,), ()), 0.0, 3.0, 6, 0)
        ff.flush()
        scalar = TraceRecorder().scope("engine")
        for i in range(6):
            scalar.window_step("decode", ((7,), ()), i * 0.5, (i + 1) * 0.5,
                               1, 0)
        scalar.flush()
        assert ff.events == scalar.events

    def test_preemption_view_derives_from_events(self):
        scope = TraceRecorder().scope("engine")
        scope.event("serving.preempt", 1.0, 4, kind="full")
        scope.event("request.resume", 2.0, 4, via="swap")
        scope.event("serving.preempt", 3.0, 9, kind="partial")
        assert scope.preemption_view() == [(1.0, 4), (3.0, 9)]
        scope.event("serving.preempt", 4.0, 4, kind="full")
        assert scope.preemption_view() == [(1.0, 4), (3.0, 9), (4.0, 4)]

    def test_trace_event_equality_covers_args(self):
        a = TraceEvent("x", 1.0, request_id=3, args={"k": 1})
        b = TraceEvent("x", 1.0, request_id=3, args={"k": 1})
        c = TraceEvent("x", 1.0, request_id=3, args={"k": 2})
        assert a == b and hash(a) == hash(b)
        assert a != c


# ---------------------------------------------------------- trace equivalence


class TestTraceEquivalence:
    """Scalar and vectorized engines must emit identical event streams."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_streams_identical_under_pressure(self, system, scenario):
        trace = timed_trace(120, 300.0, seed=3)
        vec, _ = traced_stream(
            make_engine(system, SCENARIOS[scenario], vectorize=True,
                        pressure=True), trace)
        scalar, _ = traced_stream(
            make_engine(system, SCENARIOS[scenario], vectorize=False,
                        pressure=True), trace)
        assert vec == scalar

    @pytest.mark.parametrize("scenario", ["paged_swap", "paged_recompute",
                                          "paged_partial_eviction"])
    def test_streams_identical_with_preemption(self, system, tight_capacity,
                                               scenario):
        """A pool holding ~2 contexts forces evictions; the preempt /
        resume / kv.* event interleaving must match exactly."""
        trace = preempting_trace()
        kwargs = dict(SCENARIOS[scenario],
                      memory_capacity_bytes=tight_capacity)
        vec, _ = traced_stream(
            ServingEngine(system, context_step=512, vectorize=True,
                          **kwargs), trace)
        scalar, _ = traced_stream(
            ServingEngine(system, context_step=512, vectorize=False,
                          **kwargs), trace)
        assert vec == scalar
        names = {event.name for _, event in vec}
        assert "serving.preempt" in names  # the contract is exercised
        assert "request.resume" in names
        assert "kv.release" in names

    def test_segmented_stream_identical(self, system):
        """Segment bounds cut fast-forward windows mid-flight; the spans
        must still coalesce to the unsegmented stream."""
        trace = timed_trace(60, 200.0, seed=2)
        engine = make_engine(system, SCENARIOS["paged_swap"], vectorize=True)
        whole, _ = traced_stream(engine, trace)
        cut, _ = traced_stream(engine, trace,
                               until_points=[0.05, 0.11, 0.26, 0.50])
        assert whole == cut

    @pytest.mark.parametrize("scenario", ["reserve", "paged_swap"])
    def test_recording_never_changes_the_simulation(self, system, scenario):
        trace = timed_trace(80, 250.0, seed=4)
        engine = make_engine(system, SCENARIOS[scenario], vectorize=True,
                             pressure=True)
        plain = engine.simulate(trace)
        traced = engine.simulate(trace, telemetry=TraceRecorder())
        assert plain.makespan_s == traced.makespan_s
        assert plain.decode_step_tokens == traced.decode_step_tokens
        assert (tuple(plain.queue_depth_timeline)
                == tuple(traced.queue_depth_timeline))
        assert tuple(plain.preemption_log) == tuple(traced.preemption_log)
        assert [(r.state.name, r.finish_time_s, r.stall_s)
                for r in plain.requests] \
            == [(r.state.name, r.finish_time_s, r.stall_s)
                for r in traced.requests]

    def test_derived_views_match_plain_lists(self, system, tight_capacity):
        """With tracing on, ``queue_depth_timeline`` / ``preemption_log``
        are views over the event stream — bit-exact with the plain lists
        the untraced engine keeps."""
        trace = preempting_trace()
        engine = ServingEngine(system, context_step=512, vectorize=True,
                               memory_capacity_bytes=tight_capacity,
                               **SCENARIOS["paged_swap"])
        plain = engine.simulate(trace)
        recorder = TraceRecorder()
        traced = engine.simulate(trace, telemetry=recorder)
        assert traced.preemption_log  # the scenario preempts
        assert list(traced.queue_depth_timeline) \
            == list(plain.queue_depth_timeline)
        assert list(traced.preemption_log) == list(plain.preemption_log)
        # And the views really are the recorder's storage, not copies.
        scope = recorder.scopes[0]
        assert traced.queue_depth_timeline is scope.queue_signal
        assert traced.preemption_log == scope.preemption_view()


# -------------------------------------------------------------------- export


@pytest.fixture(scope="module")
def serving_recorder(system, tight_capacity):
    engine = ServingEngine(system, context_step=512, admission="paged",
                           preemption_restore="swap",
                           memory_capacity_bytes=tight_capacity)
    recorder = TraceRecorder()
    engine.simulate(preempting_trace(), telemetry=recorder)
    return recorder


class TestPerfettoExport:
    def test_trace_event_schema(self, serving_recorder):
        trace = perfetto_trace(serving_recorder)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events, "empty trace"
        json.dumps(trace)  # strictly JSON-serializable
        for event in events:
            assert event["ph"] in ("M", "X", "i", "C")
            assert isinstance(event["pid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["name"]
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_process_and_thread_metadata(self, serving_recorder):
        events = perfetto_trace(serving_recorder)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert "engine" in names
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert "engine" in threads
        assert any(name.startswith("request ") for name in threads)

    def test_request_lifecycle_slices(self, serving_recorder):
        events = perfetto_trace(serving_recorder)["traceEvents"]
        slices = {e["name"] for e in events if e["ph"] == "X"
                  and e["tid"] != 0}
        assert {"queued", "prefill", "decode"} <= slices
        assert "preempted" in slices  # the pressured scenario evicts
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "queue_depth"

    def test_write_perfetto(self, serving_recorder, tmp_path):
        path = tmp_path / "trace.json"
        count = write_perfetto(serving_recorder, path)
        assert count > 0
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count


class TestJsonlExport:
    def test_round_trip(self, serving_recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(serving_recorder, path)
        events = read_jsonl(path)
        assert len(events) == count
        for event in events:
            assert set(event) <= {"scope", "pid", "name", "ts_s", "dur_s",
                                  "request_id", "args"}
            assert event["scope"] == "engine"
        names = {event["name"] for event in events}
        assert "request.queued" in names
        assert "engine.decode_window" in names
        assert "serving.preempt" in names

    def test_summaries_read_the_log(self, serving_recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(serving_recorder, path)
        events = read_jsonl(path)
        assert "events across" in overview(events)
        assert "preempt" in preemption_chains(events)
        finished = next(e for e in events if e["name"] == "request.finished")
        timeline = request_timeline(events, finished["request_id"])
        assert "request.queued" in timeline
        assert "request.finished" in timeline

    def test_cli_smoke(self, serving_recorder, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        write_jsonl(serving_recorder, path)
        assert telemetry_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "by event type" in out
        assert telemetry_cli([str(path), "--preemptions"]) == 0
        assert "preempt(" in capsys.readouterr().out


# -------------------------------------------------------------------- cluster


@pytest.fixture(scope="module")
def cluster_factory(small_model):
    def make():
        config = CentConfig(num_devices=6, context_samples=2)
        tenants = [
            TenantSpec("early", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=5),
                           bursty_arrivals(30, 400.0, seed=5))),
            TenantSpec("late", model=small_model, sla_latency_s=0.2,
                       trace=with_arrivals(
                           sharegpt_like_queries(30, seed=6),
                           bursty_arrivals(30, 400.0, seed=6, start_s=0.3))),
        ]
        return ClusterEngine(config, tenants, context_step=512)
    return make


@pytest.fixture(scope="module")
def cluster_traced(cluster_factory):
    recorder = TraceRecorder()
    result = cluster_factory().run(rebalance="epoch", epoch_s=0.05,
                                   telemetry=recorder)
    return result, recorder


class TestClusterTrace:
    def test_tracing_keeps_the_run_bit_exact(self, cluster_factory,
                                             cluster_traced):
        traced, _ = cluster_traced
        plain = cluster_factory().run(rebalance="epoch", epoch_s=0.05)
        assert traced.makespan_s == plain.makespan_s
        assert traced.epoch_timeline == plain.epoch_timeline
        assert traced.rebalance_log == plain.rebalance_log
        assert (traced.aggregate_goodput_tokens_per_s
                == plain.aggregate_goodput_tokens_per_s)
        assert traced.num_migrated_requests == plain.num_migrated_requests

    def test_control_plane_events(self, cluster_traced):
        result, recorder = cluster_traced
        control = next(s for s in recorder.scopes if s.name == "control")
        epochs = [e for e in control.events if e.name == "cluster.epoch"]
        assert len(epochs) == len(result.epoch_timeline)
        for event, (start_s, goodput, backlog) in zip(
                epochs, result.epoch_timeline, strict=True):
            assert event.ts_s == start_s
            assert event.args["goodput_tokens_per_s"] == goodput
            assert event.args["backlog"] == backlog
        decisions = [e for e in control.events
                     if e.name == "cluster.rebalance"]
        assert len(decisions) == result.num_rebalances
        for event in decisions:
            assert event.args["projected_gain_tokens"] \
                > event.args["migration_cost_tokens"]
            assert event.args["stall_s"] > 0
            assert event.args["rebuilt"]

    def test_migration_correlation_events(self, cluster_traced):
        result, recorder = cluster_traced
        control = next(s for s in recorder.scopes if s.name == "control")
        scope_names = {s.name for s in recorder.scopes}
        live = [e for e in control.events if e.name == "cluster.migrate"
                and e.args["mode"] == "live"]
        accepted = [e for e in live if e.args["accepted"]]
        assert len(accepted) == result.num_migrated_requests
        for event in live:
            assert event.args["source_scope"] in scope_names
            assert event.args["dest_scope"] in scope_names
            assert event.args["source_scope"] != event.args["dest_scope"]

    def test_request_timeline_follows_migration(self, cluster_traced,
                                                tmp_path):
        _, recorder = cluster_traced
        path = tmp_path / "cluster.jsonl"
        write_jsonl(recorder, path)
        events = read_jsonl(path)
        migrate = next(e for e in events if e["name"] == "cluster.migrate"
                       and e["args"]["mode"] == "live"
                       and e["args"]["accepted"])
        walk = request_timeline(events, migrate["args"]["source_request"],
                                scope=migrate["args"]["source_scope"])
        assert "request.migrate_out" in walk
        assert "live-migrated to" in walk
        assert migrate["args"]["dest_scope"] in walk
        audit = epoch_audit(events)
        assert "REBALANCE: projected gain" in audit
        assert "migration cost" in audit

    def test_metrics_timeline_per_epoch(self, cluster_traced):
        result, _ = cluster_traced
        timeline = result.metrics_timeline
        assert len(timeline) == len(result.epoch_timeline)
        rebalances = [s["cluster.rebalances"] for s in timeline]
        assert rebalances == sorted(rebalances)  # counters are monotonic
        assert rebalances[-1] == result.num_rebalances
        assert timeline[-1]["cluster.migrated_requests"] \
            == result.num_migrated_requests
        assert all("kv.pool_occupancy" in s.as_dict() or True
                   for s in timeline)
        assert timeline[0].ts_s < timeline[-1].ts_s

    def test_untraced_cluster_has_empty_metrics_timeline(self,
                                                         cluster_factory):
        result = cluster_factory().run(rebalance="epoch", epoch_s=0.05)
        assert result.metrics_timeline == ()

    def test_replica_scopes_render_as_processes(self, cluster_traced):
        _, recorder = cluster_traced
        events = perfetto_trace(recorder)["traceEvents"]
        processes = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        assert "control" in processes
        assert any(name.startswith("replica-") for name in processes)
        pids = {s.name: s.pid for s in recorder.scopes}
        assert len(pids) == len(set(pids.values()))  # one pid per scope


# ----------------------------------------------------------- result metrics


class TestResultMetrics:
    def test_serving_result_metrics_namespace(self, system):
        engine = ServingEngine(system, context_step=512, admission="paged",
                               preemption_restore="swap",
                               memory_capacity_bytes=(
                                   system.memory_capacity_bytes // 4))
        result = engine.run(timed_trace(60, 250.0, seed=4))
        metrics = result.metrics.as_dict()
        assert metrics["serving.requests"] == result.num_requests
        assert metrics["serving.preemptions"] == result.num_preemptions
        assert metrics["serving.goodput_tokens_per_s"] \
            == result.goodput_tokens_per_s
        assert 0.0 < metrics["kv.pool_occupancy"] <= 1.0
        assert all(name.startswith(("serving.", "kv."))
                   for name in metrics)

    def test_cluster_result_metrics_namespace(self, cluster_traced):
        result, _ = cluster_traced
        metrics = result.metrics.as_dict()
        assert metrics["cluster.rebalances"] == result.num_rebalances
        assert metrics["cluster.migrated_requests"] \
            == result.num_migrated_requests
        assert metrics["serving.preemptions"] == result.total_preemptions
        assert metrics["cluster.goodput_tokens_per_s"] \
            == result.aggregate_goodput_tokens_per_s
        assert all(name.startswith(("serving.", "kv.", "cluster."))
                   for name in metrics)
