"""Unit tests for the non-GEMV operation compilers and the block compiler."""

import pytest

from repro.compiler.attention import compile_attention
from repro.compiler.elementwise import compile_activation, compile_elementwise_multiply
from repro.compiler.ffn import compile_ffn
from repro.compiler.normalization import compile_rmsnorm
from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.compiler.rope import compile_rope
from repro.compiler.transformer import compile_transformer_block
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.models.config import FfnKind, LLAMA2_70B


class TestOperationDataStructures:
    def test_pnm_task_validation(self):
        with pytest.raises(ValueError):
            PnmTask(PnmUnit.EXPONENT, num_elements=0)
        with pytest.raises(ValueError):
            PnmTask(PnmUnit.RISCV, num_elements=4)  # missing routine

    def test_compiled_operation_validation(self):
        with pytest.raises(ValueError):
            CompiledOperation("op", Program(), parallel_channels=0)
        with pytest.raises(ValueError):
            CompiledOperation("op", Program(), flops=-1)


class TestElementwise:
    def test_elementwise_covers_elements(self):
        op = compile_elementwise_multiply("mul", num_elements=4096, num_channels=4)
        micro_ops = op.program.stats.micro_ops(Opcode.EW_MUL)
        # 4 bank groups x 16 lanes per micro-op, 1024 elements per channel.
        assert micro_ops * 64 >= 1024

    def test_activation_uses_lut(self):
        op = compile_activation("act", num_elements=11008, num_channels=4,
                                function="sigmoid")
        assert op.program.stats.count(Opcode.AF) > 0

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            compile_activation("act", 128, 1, function="unknown")


class TestRmsNormAndRope:
    def test_rmsnorm_structure(self):
        op = compile_rmsnorm("norm", hidden_dim=8192, num_channels=4)
        assert op.program.stats.count(Opcode.MAC_ABK) >= 1   # dot product
        assert op.program.stats.count(Opcode.EW_MUL) >= 2    # two scalings
        units = {task.unit for task in op.pnm_tasks}
        assert PnmUnit.RISCV in units                         # 1/sqrt
        routines = {task.routine for task in op.pnm_tasks if task.routine}
        assert "sqrt_inv" in routines

    def test_rope_structure(self):
        op = compile_rope("rope", num_elements=8192 + 1024, num_channels=4)
        assert op.program.stats.count(Opcode.EW_MUL) >= 2
        routines = [task.routine for task in op.pnm_tasks]
        assert "rope_pack" in routines and "rope_unpack" in routines


class TestAttention:
    def test_gqa_unrolls_to_gemvs(self):
        programs = compile_attention(LLAMA2_70B, context_length=1024, num_channels=8)
        # The score GEMV reads the KV cache once per query head (8 query heads
        # share each KV head), so the traffic is group_size times the cache.
        kv_bytes = LLAMA2_70B.num_kv_heads * 1024 * LLAMA2_70B.head_dim * 2
        assert programs.scores.dram_bytes_read == kv_bytes * LLAMA2_70B.gqa_group_size

    def test_softmax_maps_to_pnm(self):
        programs = compile_attention(LLAMA2_70B, context_length=512, num_channels=8)
        units = {task.unit for task in programs.softmax.pnm_tasks}
        assert PnmUnit.EXPONENT in units
        assert PnmUnit.REDUCTION in units
        assert PnmUnit.RISCV in units

    def test_work_scales_with_context(self):
        short = compile_attention(LLAMA2_70B, context_length=512, num_channels=8)
        long = compile_attention(LLAMA2_70B, context_length=4096, num_channels=8)
        assert long.scores.mac_micro_ops > short.scores.mac_micro_ops

    def test_invalid_context_rejected(self):
        with pytest.raises(ValueError):
            compile_attention(LLAMA2_70B, context_length=0, num_channels=8)


class TestFfn:
    def test_gated_ffn_has_three_gemvs(self, small_model):
        programs = compile_ffn(small_model, num_channels=4)
        names = [op.name for op in programs.operations]
        assert {"ffn.w1", "ffn.w3", "ffn.w2"} <= set(names)
        assert "ffn.silu" in names

    def test_standard_ffn_has_two_gemvs(self, small_model):
        import dataclasses
        opt_like = dataclasses.replace(small_model, ffn_kind=FfnKind.STANDARD,
                                       activation="gelu")
        programs = compile_ffn(opt_like, num_channels=4)
        names = [op.name for op in programs.operations]
        assert {"ffn.fc1", "ffn.fc2"} <= set(names)
        assert "ffn.w3" not in names


class TestTransformerBlock:
    def test_block_structure(self, small_model):
        block = compile_transformer_block(small_model, context_length=256, num_channels=4)
        names = [op.name for op in block.operations]
        for expected in ("attn.rmsnorm", "attn.wq", "attn.wk", "attn.wv", "attn.rope",
                         "attention.scores", "attention.softmax", "attention.output",
                         "attn.wo", "attn.residual", "ffn.rmsnorm", "ffn.w1",
                         "ffn.residual"):
            assert expected in names

    def test_mac_fraction_dominates_small_model(self, small_model):
        block = compile_transformer_block(small_model, context_length=1024, num_channels=4)
        assert block.mac_fraction() > 0.95

    def test_mac_fraction_exceeds_99_percent_for_llama7b(self):
        from repro.models.config import LLAMA2_7B

        block = compile_transformer_block(LLAMA2_7B, context_length=2048, num_channels=8)
        assert block.mac_fraction() > 0.99

    def test_flops_match_model_estimate(self, small_model):
        context = 1024
        block = compile_transformer_block(small_model, context, num_channels=4)
        expected = small_model.decode_flops_per_token(context) / small_model.num_layers
        # The block-level FLOP count should be within ~25% of the analytical
        # per-layer estimate (rounding to 16-element granules, GQA unrolling).
        assert block.total_flops == pytest.approx(expected, rel=0.3)

    def test_attention_channels_split(self, small_model):
        block = compile_transformer_block(small_model, context_length=256,
                                          num_channels=16, attention_channels=4)
        assert block.num_channels == 16
        assert block.attention_channels == 4
        scores = block.operation("attention.scores")
        assert scores.parallel_channels == 4
        wq = block.operation("attn.wq")
        assert wq.parallel_channels == 16

    def test_context_bounds_checked(self, small_model):
        with pytest.raises(ValueError):
            compile_transformer_block(small_model, context_length=small_model.max_context + 1,
                                      num_channels=4)
        with pytest.raises(ValueError):
            compile_transformer_block(small_model, context_length=0, num_channels=4)

    def test_unknown_operation_lookup(self, small_model):
        block = compile_transformer_block(small_model, context_length=128, num_channels=4)
        with pytest.raises(KeyError):
            block.operation("does.not.exist")

    def test_instruction_count_positive(self, small_model):
        block = compile_transformer_block(small_model, context_length=128, num_channels=4)
        assert block.total_instructions > 100
        assert block.total_dram_bytes > 0
