"""Shared fixtures: scaled-down models and systems that keep tests fast."""

from __future__ import annotations

import pytest

from repro.core.config import CentConfig
from repro.models.config import ModelConfig


@pytest.fixture
def tiny_model() -> ModelConfig:
    """A Llama-shaped model small enough for functional simulation."""
    return ModelConfig(
        name="tiny-llama",
        num_layers=4,
        d_model=64,
        num_heads=4,
        num_kv_heads=2,
        d_ff=128,
        vocab_size=512,
        max_context=64,
    )


@pytest.fixture
def small_model() -> ModelConfig:
    """A mid-sized model used by performance-path tests (still fast)."""
    return ModelConfig(
        name="small-llama",
        num_layers=8,
        d_model=1024,
        num_heads=16,
        num_kv_heads=4,
        d_ff=2816,
        vocab_size=32000,
        max_context=2048,
    )


@pytest.fixture
def small_config() -> CentConfig:
    """A 4-device CENT configuration with few context samples."""
    return CentConfig(num_devices=4, context_samples=2)
