"""Shared fixtures: scaled-down models and systems that keep tests fast."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.config import CentConfig
from repro.models.config import ModelConfig

# Property tests must behave the same on every CI run: the "ci" profile
# derandomizes example generation (no ambient entropy — the same guarantee
# repro-lint's determinism rule enforces on the simulator itself) and drops
# the per-example deadline, which flakes on shared runners.  Local runs keep
# the randomized default profile so new counterexamples can still surface;
# opt in with HYPOTHESIS_PROFILE=ci to reproduce a CI failure exactly.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"))


@pytest.fixture
def tiny_model() -> ModelConfig:
    """A Llama-shaped model small enough for functional simulation."""
    return ModelConfig(
        name="tiny-llama",
        num_layers=4,
        d_model=64,
        num_heads=4,
        num_kv_heads=2,
        d_ff=128,
        vocab_size=512,
        max_context=64,
    )


@pytest.fixture
def small_model() -> ModelConfig:
    """A mid-sized model used by performance-path tests (still fast)."""
    return ModelConfig(
        name="small-llama",
        num_layers=8,
        d_model=1024,
        num_heads=16,
        num_kv_heads=4,
        d_ff=2816,
        vocab_size=32000,
        max_context=2048,
    )


@pytest.fixture
def small_config() -> CentConfig:
    """A 4-device CENT configuration with few context samples."""
    return CentConfig(num_devices=4, context_samples=2)
