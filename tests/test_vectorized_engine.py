"""Bit-exactness of the vectorized serving core against the scalar path.

The vectorized iteration core (columnar request state, batched cost
pricing, the event-horizon fast-forward, C-speed bookkeeping) is allowed
exactly zero numerical drift: every float it produces must replay the
scalar loop's arithmetic operation for operation.  These tests pin that
contract with full-run fingerprints — every per-request timestamp, every
time-between-tokens sample, the whole queue-depth timeline — across the
admission/preemption/migration scenario matrix, plus direct equivalence
of the batch cost-model entry points and the O(batch) ``extend``
regression.
"""

import numpy as np
import pytest

from repro.core.config import CentConfig
from repro.core.iteration import IterationCostModel
from repro.core.system import CentSystem
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig
from repro.serving import ServingEngine
from repro.workloads import (
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024,
                       num_heads=16, num_kv_heads=4, d_ff=2816,
                       vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    return CentSystem(CentConfig(num_devices=2, context_samples=2),
                      small_model)


def timed_trace(count, rate, seed=1, **kwargs):
    return with_arrivals(sharegpt_like_queries(count, seed=seed, **kwargs),
                         poisson_arrivals(count, rate, seed=seed))


def run_fingerprint(engine, trace, *, until_points=()):
    """Every observable float/int of a run, for exact comparison.

    ``until_points`` drives the run through segmented ``advance`` calls
    first (the cluster layer's access pattern), then drains.
    """
    state = engine.begin(trace)
    for until_s in until_points:
        engine.advance(state, until_s=until_s)
    run = engine.advance(state)
    return (
        run.makespan_s, run.prefill_time_s, run.decode_time_s,
        run.decode_step_tokens, run.peak_memory_bytes,
        tuple(run.queue_depth_timeline), tuple(run.preemption_log),
        tuple((r.state.name, r.finish_time_s, r.first_token_time_s,
               r.last_token_time_s, r.admitted_time_s, r.stall_s,
               r.preempted_count, r.num_swap_outs, r.num_swap_ins,
               r.swap_time_s, r.recompute_tokens, r.partial_evictions,
               tuple(r.tbt_samples_s)) for r in run.requests),
    )


SCENARIOS = {
    "reserve": dict(admission="reserve"),
    "reserve_interleave": dict(admission="reserve", interleave_prefill=True),
    "paged_swap": dict(admission="paged", preemption_restore="swap"),
    "paged_recompute": dict(admission="paged",
                            preemption_restore="recompute"),
    "paged_partial_eviction": dict(admission="paged",
                                   preemption_restore="swap",
                                   preemption_partial_blocks=2),
    "paged_interleave": dict(admission="paged", preemption_restore="swap",
                             interleave_prefill=True),
}


class TestVectorizedBitExactness:
    """Vectorized and scalar runs must be indistinguishable, field by field."""

    def make_engines(self, system, kwargs, *, pressure=False):
        extra = {}
        if pressure:
            # A quarter of the memory forces admission queuing, preemption
            # and (paged) block-pool churn, exercising every eviction path.
            extra["memory_capacity_bytes"] = system.memory_capacity_bytes // 4
        return (ServingEngine(system, context_step=512, vectorize=True,
                              **kwargs, **extra),
                ServingEngine(system, context_step=512, vectorize=False,
                              **kwargs, **extra))

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_full_run_identical(self, system, scenario):
        vec, scalar = self.make_engines(system, SCENARIOS[scenario],
                                        pressure=True)
        trace = timed_trace(120, 300.0, seed=3)
        assert (run_fingerprint(vec, trace)
                == run_fingerprint(scalar, trace))

    @pytest.mark.parametrize("scenario", ["reserve", "paged_swap"])
    def test_segmented_run_identical(self, system, scenario):
        """Segment bounds cut fast-forward windows mid-flight; the resumed
        fold must continue from the identical float clock."""
        vec, scalar = self.make_engines(system, SCENARIOS[scenario])
        trace = timed_trace(60, 400.0, seed=9)
        points = (0.02, 0.05, 0.011, 0.3)  # includes a no-op (past) bound
        assert (run_fingerprint(vec, trace, until_points=points)
                == run_fingerprint(scalar, trace, until_points=points))

    def test_fast_forward_engages_and_matches(self, system):
        """A saturated decode-only regime (where whole windows advance in
        closed form) still reproduces the scalar iteration exactly."""
        vec, scalar = self.make_engines(system, SCENARIOS["paged_swap"])
        # Everyone arrives at once: after the prefill phase the whole batch
        # decodes in lockstep — maximal fast-forward windows.
        trace = timed_trace(40, 1e6, seed=5, mean_decode_tokens=600.0)
        fp_vec = run_fingerprint(vec, trace)
        fp_scalar = run_fingerprint(scalar, trace)
        assert fp_vec == fp_scalar
        # Long uninterrupted decode streaks really occurred (the windows
        # the fast-forward collapses): >= 100 consecutive tokens at some
        # point for some request.
        tbts = fp_vec[-1][0][-1]
        assert len(tbts) >= 100

    @pytest.mark.parametrize("admission", ["reserve", "paged"])
    def test_live_migration_identical(self, system, admission):
        """migrate_out/migrate_in mid-run land on identical states under
        both paths (the cluster re-placement access pattern)."""

        def migrated_fingerprint(vectorize):
            source = ServingEngine(
                system, context_step=512, admission=admission,
                vectorize=vectorize,
                memory_capacity_bytes=system.memory_capacity_bytes // 4)
            target = ServingEngine(
                system, context_step=512, admission=admission,
                vectorize=vectorize,
                memory_capacity_bytes=system.memory_capacity_bytes // 4)
            trace = timed_trace(25, 300.0, seed=1)
            state_a = source.begin(trace)
            source.advance(state_a, until_s=0.05)
            movable = [r for r in state_a.unfinished
                       if r.context_length > 0 and r.restore_remaining == 0]
            assert movable
            state_b = target.begin([], planning_trace=trace)
            state_b.clock = 0.05
            for request in movable:
                moved = source.migrate_out(state_a, request, now_s=0.05)
                target.migrate_in(state_b, moved, now_s=0.05)
            for request in state_a.unfinished:
                target.extend(state_b, [request.query])
            run = target.advance(state_b)
            return (
                run.makespan_s, run.decode_time_s, run.decode_step_tokens,
                tuple(run.queue_depth_timeline),
                tuple((r.state.name, r.finish_time_s, r.first_token_time_s,
                       r.last_token_time_s, r.stall_s, r.migrated_count,
                       tuple(r.tbt_samples_s)) for r in run.requests),
            )

        assert migrated_fingerprint(True) == migrated_fingerprint(False)


class TestBatchCostModel:
    """The batch entry points replay the scalar folds bit for bit."""

    @pytest.fixture(scope="class")
    def cost(self, system, small_model):
        plan = ParallelismPlan(name="PP=8", num_devices=2, pp_stages=8)
        return IterationCostModel(system.performance, small_model, plan,
                                  context_step=512)

    def test_block_latency_batch_matches_scalar(self, cost, small_model):
        contexts = np.array([1, 7, 511, 512, 513, 1024, 1999,
                             small_model.max_context + 50])
        batch = cost.block_latency_batch_ns(contexts)
        for context, latency in zip(contexts.tolist(), batch.tolist(), strict=True):
            assert latency == cost.block_latency_ns(context)

    def test_decode_iteration_batch_matches_scalar(self, cost):
        rng = np.random.default_rng(4)
        for size in (1, 2, 7, 33, 260):
            contexts = rng.integers(1, 2000, size=size)
            assert (cost.decode_iteration_batch_s(contexts)
                    == cost.decode_iteration_s(contexts.tolist()))

    def test_decode_span_matches_iterated_scalar(self, cost):
        """Row k of the span equals pricing the batch at contexts + k."""
        contexts = np.array([5, 300, 511, 777, 1500])
        span = cost.decode_span_s(contexts, 64)
        for step in range(64):
            stepped = [c + step for c in contexts.tolist()]
            assert span[step] == cost.decode_iteration_s(stepped)

    def test_prefill_chunk_batch_matches_scalar_fold(self, cost):
        tokens = np.array([512, 100, 0, 37, 512])
        contexts = np.array([256, 900, 1, 1500, 2048])
        fold = 0.0
        for num, context in zip(tokens.tolist(), contexts.tolist(), strict=True):
            fold += cost.prefill_chunk_s(num, context)
        assert cost.prefill_chunk_batch_s(tokens, contexts) == fold


class TestExtendBookkeeping:
    """Admission bookkeeping is O(batch): sorted feeds never re-sort."""

    def test_sorted_extends_do_not_resort(self, system):
        engine = ServingEngine(system, context_step=512)
        trace = timed_trace(60, 500.0, seed=2)
        state = engine.begin(trace[:20], planning_trace=trace)
        assert state.pending_resorts == 0
        # Epoch-style feeding: each window arrives after the previous one.
        engine.extend(state, trace[20:40])
        engine.extend(state, trace[40:])
        assert state.pending_resorts == 0
        engine.advance(state)
        assert state.drained

    def test_out_of_order_extend_resorts_once(self, system):
        engine = ServingEngine(system, context_step=512)
        trace = timed_trace(30, 500.0, seed=2)
        state = engine.begin(trace[10:], planning_trace=trace)
        engine.extend(state, trace[:10])  # earlier arrivals: must re-sort
        assert state.pending_resorts == 1
        engine.advance(state)
        assert state.drained
        # The re-sorted queue served in correct arrival order regardless:
        # walking requests by arrival, admission times never go backwards.
        by_arrival = sorted(state.requests, key=lambda r: r.arrival_time_s)
        admitted = [r.admitted_time_s for r in by_arrival
                    if r.admitted_time_s is not None]
        assert admitted == sorted(admitted)
