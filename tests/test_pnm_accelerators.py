"""Unit tests for the PNM accelerators and their latency model."""

import numpy as np
import pytest

from repro.pnm.accelerators import (
    Accumulator,
    ExponentUnit,
    PnmAcceleratorBank,
    PnmLatencyModel,
    ReductionTree,
)


class TestFunctionalUnits:
    def test_accumulator_lane_wise(self):
        result = Accumulator().execute(np.ones(16, dtype=np.float32),
                                       np.full(16, 2.0, dtype=np.float32))
        assert np.allclose(result, 3.0)

    def test_reduction_tree_sums_to_lane_zero(self):
        result = ReductionTree().execute(np.arange(16, dtype=np.float32))
        assert result[0] == pytest.approx(120.0)
        assert np.all(result[1:] == 0.0)

    def test_exponent_unit_matches_exp(self):
        x = np.linspace(-4, 0, 16).astype(np.float32)
        result = ExponentUnit().execute(x)
        assert np.allclose(result, np.exp(x), rtol=2e-2)


class TestLatencyModel:
    def test_cycle_time(self):
        model = PnmLatencyModel(clock_ghz=2.0, instances=32)
        assert model.cycle_ns == pytest.approx(0.5)

    def test_parallel_instances(self):
        model = PnmLatencyModel(clock_ghz=2.0, instances=32)
        # 32 slots processed in one wave, 33 slots need two waves.
        assert model.latency_ns(32) == pytest.approx(0.5)
        assert model.latency_ns(33) == pytest.approx(1.0)

    def test_zero_slots_free(self):
        assert PnmLatencyModel().latency_ns(0) == 0.0

    def test_elements_to_slots(self):
        model = PnmLatencyModel(clock_ghz=2.0, instances=32)
        assert model.latency_for_elements(16 * 32) == pytest.approx(0.5)
        assert model.latency_for_elements(16 * 32 + 1) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PnmLatencyModel().latency_ns(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PnmLatencyModel(clock_ghz=0.0)
        with pytest.raises(ValueError):
            PnmLatencyModel(instances=0)


class TestAcceleratorBank:
    def test_accumulate_vectors(self):
        bank = PnmAcceleratorBank()
        a = np.arange(40, dtype=np.float32)
        b = np.ones(40, dtype=np.float32)
        assert np.allclose(bank.accumulate(a, b), a + b, atol=0.25)

    def test_accumulate_shape_mismatch(self):
        bank = PnmAcceleratorBank()
        with pytest.raises(ValueError):
            bank.accumulate(np.zeros(4), np.zeros(5))

    def test_reduce_sum(self):
        bank = PnmAcceleratorBank()
        assert bank.reduce_sum(np.ones(100, dtype=np.float32)) == pytest.approx(100.0)

    def test_exponent_vector(self):
        bank = PnmAcceleratorBank()
        x = np.linspace(-3, 0, 33).astype(np.float32)
        assert np.allclose(bank.exponent(x), np.exp(x), rtol=2e-2)

    def test_slot_operations_tracked(self):
        bank = PnmAcceleratorBank()
        bank.reduce_sum(np.ones(32, dtype=np.float32))
        assert bank.slot_operations == 2

    def test_operation_latency_delegates(self):
        bank = PnmAcceleratorBank()
        assert bank.operation_latency_ns(16 * 32) == pytest.approx(0.5)
