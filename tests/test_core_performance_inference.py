"""Unit tests for the performance model and the inference simulator."""

import pytest

from repro.core.config import CentConfig
from repro.core.inference import InferenceSimulator
from repro.core.performance import PerformanceModel
from repro.mapping.parallelism import PipelineParallel, TensorParallel
from repro.models.config import LLAMA2_7B


@pytest.fixture(scope="module")
def config() -> CentConfig:
    return CentConfig(num_devices=4, context_samples=2)


@pytest.fixture(scope="module")
def performance(config) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="module")
def small_model_m():
    from repro.models.config import ModelConfig

    return ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                       num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)


class TestPerformanceModel:
    def test_block_cost_positive(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        cost = performance.block_cost(small_model_m, plan, context_length=256)
        assert cost.breakdown.pim_ns > 0
        assert cost.breakdown.pnm_ns > 0
        assert cost.flops > 0
        assert cost.dram_bytes_read > 0

    def test_pim_dominates(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        cost = performance.block_cost(small_model_m, plan, context_length=512)
        assert cost.breakdown.pim_ns > 10 * cost.breakdown.pnm_ns

    def test_latency_grows_with_context(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        short = performance.block_cost(small_model_m, plan, 128).breakdown.total_ns
        long = performance.block_cost(small_model_m, plan, 2048).breakdown.total_ns
        assert long > short

    def test_more_channels_reduce_latency(self, performance, small_model_m):
        few = performance.block_cost(small_model_m, PipelineParallel(1, small_model_m), 256)
        many = performance.block_cost(small_model_m, PipelineParallel(4, small_model_m), 256)
        assert many.breakdown.pim_ns < few.breakdown.pim_ns

    def test_tensor_parallel_adds_cxl(self, performance, small_model_m):
        pp = performance.block_cost(small_model_m, PipelineParallel(4, small_model_m), 256)
        tp = performance.block_cost(small_model_m, TensorParallel(4), 256)
        assert tp.breakdown.cxl_ns > pp.breakdown.cxl_ns

    def test_cache_hit_returns_consistent_result(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        first = performance.block_cost(small_model_m, plan, 256)
        second = performance.block_cost(small_model_m, plan, 256)
        assert first.breakdown.total_ns == second.breakdown.total_ns

    def test_command_counts_scale_to_all_channels(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        cost = performance.block_cost(small_model_m, plan, 256)
        totals = cost.total_command_counts()
        for kind, count in cost.command_counts_per_channel.items():
            assert totals[kind] == count * cost.fc_channels

    def test_token_breakdown_includes_host(self, performance, small_model_m):
        plan = PipelineParallel(4, small_model_m)
        token = performance.token_breakdown(small_model_m, plan, 256)
        block = performance.block_cost(small_model_m, plan, 256)
        assert token.host_ns > 0
        assert token.pim_ns == pytest.approx(block.breakdown.pim_ns * small_model_m.num_layers)


class TestInferenceSimulator:
    def test_simulation_shapes(self, config, performance, small_model_m):
        simulator = InferenceSimulator(config, performance)
        plan = PipelineParallel(4, small_model_m)
        result = simulator.simulate(small_model_m, plan, prompt_tokens=64, decode_tokens=192)
        assert result.queries_in_flight == small_model_m.num_layers
        assert result.decode_latency_s > result.prefill_latency_s
        assert result.decode_throughput_tokens_per_s > 0
        assert result.token_latency_breakdown.total_ns > 0

    def test_tensor_parallel_lower_latency_lower_throughput(self, config, performance,
                                                            small_model_m):
        simulator = InferenceSimulator(config, performance)
        pp = simulator.simulate(small_model_m, PipelineParallel(4, small_model_m), 64, 192)
        tp = simulator.simulate(small_model_m, TensorParallel(4), 64, 192)
        assert tp.query_latency_s < pp.query_latency_s
        assert tp.decode_throughput_tokens_per_s < pp.decode_throughput_tokens_per_s

    def test_context_overflow_rejected(self, config, performance, small_model_m):
        simulator = InferenceSimulator(config, performance)
        plan = PipelineParallel(4, small_model_m)
        with pytest.raises(ValueError):
            simulator.simulate(small_model_m, plan, prompt_tokens=2048, decode_tokens=2048)

    def test_invalid_token_counts_rejected(self, config, performance, small_model_m):
        simulator = InferenceSimulator(config, performance)
        plan = PipelineParallel(4, small_model_m)
        with pytest.raises(ValueError):
            simulator.simulate(small_model_m, plan, prompt_tokens=0, decode_tokens=16)

    def test_context_samples_bound_runtime(self, small_model_m):
        # More context samples refine the integration but never change the
        # qualitative result; the averages stay within a few percent.
        coarse_cfg = CentConfig(num_devices=4, context_samples=2)
        fine_cfg = CentConfig(num_devices=4, context_samples=4)
        coarse = InferenceSimulator(coarse_cfg).simulate(
            small_model_m, PipelineParallel(4, small_model_m), 64, 192)
        fine = InferenceSimulator(fine_cfg).simulate(
            small_model_m, PipelineParallel(4, small_model_m), 64, 192)
        assert coarse.decode_throughput_tokens_per_s == pytest.approx(
            fine.decode_throughput_tokens_per_s, rel=0.1)

    def test_phase_cost_helper(self, config, performance, small_model_m):
        simulator = InferenceSimulator(config, performance)
        plan = PipelineParallel(4, small_model_m)
        phase = simulator.decode_phase(small_model_m, plan, 64, 192)
        assert phase.per_query_latency_s > 0
        assert phase.throughput_tokens_per_s > 0
        assert phase.mean_block_cost.breakdown.pim_ns > 0


class TestCentSystem:
    def test_run_inference_with_power(self, small_model_m):
        from repro.core.system import CentSystem

        system = CentSystem(CentConfig(num_devices=4, context_samples=2), small_model_m)
        result = system.run_inference(prompt_tokens=64, decode_tokens=192)
        assert result.average_power_w > 0
        assert result.energy_per_token_j > 0
        assert result.devices_used <= 4

    def test_plans(self, small_model_m):
        from repro.core.system import CentSystem

        system = CentSystem(CentConfig(num_devices=4, context_samples=2), small_model_m)
        assert system.throughput_plan().pp_stages == small_model_m.num_layers
        assert system.latency_plan().is_tensor_parallel

    def test_llama7b_quickstart_throughput_in_expected_band(self):
        # The headline sanity check: an 8-device CENT system serves Llama2-7B
        # at a few thousand tokens/s (the paper's effective throughput is in
        # the low thousands).
        from repro.core.system import CentSystem

        system = CentSystem(CentConfig(num_devices=8, context_samples=2), LLAMA2_7B)
        result = system.run_inference(512, 512, plan=PipelineParallel(8, LLAMA2_7B),
                                      with_power=False)
        assert 1000 < result.decode_throughput_tokens_per_s < 20000
