"""The analysis layer: time attribution, SLO monitoring, reporting.

Three contracts under test:

* **Conservation** — every :class:`RequestAttribution`'s segments sum
  *bit-exactly* to its measured latency and every
  :class:`ReplicaAttribution`'s to its makespan, for arbitrary timing
  marks (hypothesis) and for real engine runs with preemptions, swaps
  and recompute rebuilds.  Attribution derives from engine counters, not
  the trace, so traced/untraced and scalar/vectorized runs must produce
  *identical* attributions.
* **SLO rule semantics** — windowed burn rate (no firing before the
  window fills), breach fractions, guard metrics, hysteresis (one alert
  per excursion, not a flap storm), rate rules over monotonic counters,
  and silence on healthy timelines.  Plus the integration contract: a
  traced overloaded closed-loop run fires, an underloaded one stays
  silent, and replaying the rules over the saved trace reproduces the
  live monitor's alerts.
* **Reporting** — the HTML report is self-contained and the
  ``python -m repro.telemetry`` subviews render from a saved trace.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterEngine, TenantSpec
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving import ServingEngine
from repro.serving.request import RequestState, ServingRequest
from repro.telemetry import (
    Alert,
    AlertLog,
    ConservationError,
    SloMonitor,
    SloRule,
    TraceRecorder,
    attribute_run,
    attribute_trace,
    default_rules,
    snapshots_from_trace,
    verify_conservation,
    write_jsonl,
    write_report,
)
from repro.telemetry.__main__ import main as telemetry_cli
from repro.telemetry.export import iter_scope_events
from repro.telemetry.metrics import MetricsSnapshot
from repro.workloads import (
    bursty_arrivals,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)
from repro.workloads.queries import Query


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024,
                       num_heads=16, num_kv_heads=4, d_ff=2816,
                       vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def system(small_model):
    return CentSystem(CentConfig(num_devices=2, context_samples=2),
                      small_model)


@pytest.fixture(scope="module")
def tight_capacity(small_model):
    """Capacity for ~2 full contexts: paged admission must preempt."""
    profile = ModelMemoryProfile(small_model)
    return int(profile.parameter_bytes
               + 2.2 * profile.kv_cache_bytes_per_query(512))


def preempting_trace():
    return fixed_queries(8, prompt_tokens=256, decode_tokens=256)


# --------------------------------------------------------------- conservation


def finished_request(request_id, *, arrival, queued, prefill, prefill_stall,
                     decode_stall, decode):
    """Build a FINISHED ServingRequest from its intended segment widths."""
    request = ServingRequest(request_id, Query(64, 64,
                                               arrival_time_s=arrival))
    request.admitted_time_s = arrival + queued
    request.first_token_time_s = (request.admitted_time_s
                                  + prefill + prefill_stall)
    request.finish_time_s = (request.first_token_time_s
                             + decode_stall + decode)
    request.prefill_stall_s = prefill_stall
    request.stall_s = prefill_stall + decode_stall
    request.state = RequestState.FINISHED
    return request


def run_stub(requests, *, prefill_busy=0.0, decode_busy=0.0, idle=0.0):
    """Duck-typed EngineRun: attribute_run only reads these four fields."""
    return SimpleNamespace(requests=list(requests),
                           makespan_s=prefill_busy + decode_busy + idle,
                           prefill_time_s=prefill_busy,
                           decode_time_s=decode_busy)


seconds = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                    allow_infinity=False)
segment_widths = st.tuples(seconds, seconds, seconds, seconds, seconds,
                           seconds)


class TestConservationProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(segment_widths, min_size=1, max_size=8),
           seconds, seconds, seconds)
    def test_segments_always_sum_to_measured_totals(
            self, widths, prefill_busy, decode_busy, idle):
        # Arbitrary non-negative segment widths (including zeros and
        # values spanning eight orders of magnitude, where float addition
        # is at its least associative): the fold must reproduce the
        # measured latency bit-exactly because the final segment is the
        # residual of that very fold.
        requests = [
            finished_request(i, arrival=arrival, queued=queued,
                             prefill=prefill, prefill_stall=prefill_stall,
                             decode_stall=decode_stall, decode=decode)
            for i, (arrival, queued, prefill, prefill_stall, decode_stall,
                    decode) in enumerate(widths)
        ]
        run = run_stub(requests, prefill_busy=prefill_busy,
                       decode_busy=decode_busy, idle=idle)
        attribution = attribute_run(run)  # verify_conservation inside
        assert attribution.num_finished == len(widths)
        for row in attribution.requests:
            assert row.segment_sum_s == row.latency_s
            # The timing marks round-trip through the float64 columnar
            # store, so recovered segments match what we constructed up
            # to float addition error.
            assert row.queued_s == pytest.approx(
                widths[row.request_id][1], abs=1e-6, rel=1e-9)
        replica = attribution.replica
        assert replica.segment_sum_s == replica.makespan_s
        assert replica.idle_s == pytest.approx(idle, abs=1e-9, rel=1e-9)
        totals = attribution.totals()
        assert set(totals) == {"queued", "prefill", "prefill_stall",
                               "decode_stall", "decode"}

    def test_mixed_outcomes_are_counted_not_decomposed(self):
        finished = finished_request(0, arrival=0.0, queued=0.1, prefill=0.2,
                                    prefill_stall=0.0, decode_stall=0.3,
                                    decode=0.4)
        rejected = ServingRequest(1, Query(64, 64),
                                  state=RequestState.REJECTED)
        unfinished = ServingRequest(2, Query(64, 64, arrival_time_s=0.5),
                                    state=RequestState.DECODE)
        attribution = attribute_run(
            run_stub([finished, rejected, unfinished], idle=2.0))
        assert attribution.num_requests == 3
        assert attribution.num_finished == 1
        assert attribution.num_rejected == 1
        assert attribution.num_unfinished == 1
        assert len(attribution.requests) == 1

    def test_overcharged_stall_fails_conservation(self):
        # A prefill stall larger than the admission->first-token gap means
        # some other segment was over-charged: the prefill segment goes
        # meaningfully negative and verification must refuse the
        # decomposition instead of silently shifting the time elsewhere.
        request = finished_request(0, arrival=0.0, queued=0.1, prefill=0.2,
                                   prefill_stall=0.0, decode_stall=0.0,
                                   decode=0.5)
        request.prefill_stall_s = 5.0
        request.stall_s = 5.0
        with pytest.raises(ConservationError, match="negative"):
            attribute_run(run_stub([request], idle=1.0))

    def test_verify_rejects_tampered_rows(self):
        attribution = attribute_run(run_stub(
            [finished_request(0, arrival=0.0, queued=0.1, prefill=0.2,
                              prefill_stall=0.0, decode_stall=0.0,
                              decode=0.5)], idle=1.0))
        row = attribution.requests[0]
        import dataclasses
        tampered = dataclasses.replace(attribution, requests=(
            dataclasses.replace(row, decode_s=row.decode_s + 0.25),))
        with pytest.raises(ConservationError, match="segments sum"):
            verify_conservation(tampered)


# -------------------------------------------------- run-level attribution


#: The stall-heavy scenarios: every restore mode plus the legacy path.
SCENARIOS = {
    "reserve": dict(admission="reserve"),
    "paged_swap": dict(admission="paged", preemption_restore="swap"),
    "paged_recompute": dict(admission="paged",
                            preemption_restore="recompute"),
}


def make_engine(system, kwargs, *, vectorize, capacity=None):
    extra = {}
    if capacity is not None:
        extra["memory_capacity_bytes"] = capacity
    return ServingEngine(system, context_step=512, vectorize=vectorize,
                         **kwargs, **extra)


class TestRunAttribution:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_scalar_and_vectorized_attributions_identical(
            self, system, tight_capacity, scenario):
        kwargs = SCENARIOS[scenario]
        capacity = tight_capacity if kwargs["admission"] == "paged" else None
        trace = preempting_trace()
        runs = {
            vectorize: make_engine(system, kwargs, vectorize=vectorize,
                                   capacity=capacity).simulate(trace)
            for vectorize in (False, True)
        }
        scalar = attribute_run(runs[False])
        vectorized = attribute_run(runs[True])
        assert scalar.requests == vectorized.requests
        assert scalar.replica == vectorized.replica
        assert scalar.link == vectorized.link

    def test_tracing_never_changes_the_attribution(self, system,
                                                   tight_capacity):
        kwargs = SCENARIOS["paged_swap"]
        trace = preempting_trace()
        engine = make_engine(system, kwargs, vectorize=True,
                             capacity=tight_capacity)
        plain = engine.simulate(trace)
        recorder = TraceRecorder()
        traced = engine.simulate(trace, telemetry=recorder)
        recorder.finalize()
        assert attribute_run(plain) == attribute_run(traced)

    def test_preempted_run_attributes_stalls(self, system, tight_capacity):
        run = make_engine(system, SCENARIOS["paged_swap"], vectorize=True,
                          capacity=tight_capacity).simulate(
                              preempting_trace())
        attribution = attribute_run(run)
        preempted = [row for row in attribution.requests
                     if row.num_preemptions > 0]
        assert preempted, "the tight pool must have preempted someone"
        # A preempted request's off-device time lands in the stall
        # segments, and the swap restores show up on the link.
        assert any(row.prefill_stall_s > 0 or row.decode_stall_s > 0
                   for row in preempted)
        assert attribution.link.num_swap_outs > 0
        assert attribution.link.swap_busy_s > 0
        # Busy + idle fractions are a partition of the makespan.
        replica = attribution.replica
        assert 0.0 < replica.busy_fraction <= 1.0
        assert replica.idle_s >= 0.0


# ---------------------------------------------------- post-hoc (trace) views


class TestTraceAttribution:
    def test_kv_occupancy_uses_pool_capacity(self):
        events = [
            {"scope": "engine", "pid": 1, "name": "kv.pool", "ts_s": 0.0,
             "args": {"total_blocks": 10, "block_bytes": 1024}},
            {"scope": "engine", "pid": 1, "name": "kv.alloc", "ts_s": 1.0,
             "args": {"free_blocks": 4}},
            {"scope": "engine", "pid": 1, "name": "kv.release", "ts_s": 2.0,
             "args": {"free_blocks": 9}},
            {"scope": "engine", "pid": 1, "name": "kv.evict", "ts_s": 3.0,
             "args": {"free_blocks": 8, "staged_blocks": 3}},
            {"scope": "engine", "pid": 1, "name": "kv.readmit", "ts_s": 4.0,
             "args": {"free_blocks": 5, "blocks": 3}},
        ]
        attribution = attribute_trace(events)
        assert attribution.kv_occupancy["engine"] == [
            (1.0, 0.6), (2.0, 0.1), (3.0, 0.2), (4.0, 0.5)]
        # evict staged 3 blocks out, readmit brought 3 back: 6 KiB total.
        assert attribution.link_swap_bytes == 6 * 1024

    def test_scope_busy_sums_window_spans(self):
        events = [
            {"scope": "engine", "pid": 1, "name": "engine.prefill_window",
             "ts_s": 0.0, "dur_s": 2.0},
            {"scope": "engine", "pid": 1, "name": "engine.decode_window",
             "ts_s": 2.0, "dur_s": 6.0},
            {"scope": "engine", "pid": 1, "name": "request.finished",
             "ts_s": 10.0, "request_id": 0},
        ]
        attribution = attribute_trace(events)
        busy = attribution.scope_busy["engine"]
        assert busy["prefill"] == 2.0 and busy["decode"] == 6.0
        assert attribution.scope_utilization("engine") == pytest.approx(0.8)

    def test_request_rows_decompose_lifecycles(self, system, tight_capacity):
        engine = make_engine(system, SCENARIOS["paged_swap"], vectorize=True,
                             capacity=tight_capacity)
        recorder = TraceRecorder()
        engine.simulate(preempting_trace(), telemetry=recorder)
        recorder.finalize()
        events = list(iter_scope_events(recorder))
        rows = attribute_trace(events).request_rows
        assert rows and all(row["finished"] for row in rows)
        for row in rows:
            for key in ("queued_s", "prefill_s", "decode_s", "preempted_s"):
                assert row[key] >= 0.0
        assert any(row["preempted_s"] > 0 for row in rows)


# ------------------------------------------------------------------ SLO rules


def snapshots(metric, values, *, ts0=1.0, dt=1.0, extra=None):
    return [MetricsSnapshot(ts_s=ts0 + i * dt,
                            values={metric: value, **(extra or {})})
            for i, value in enumerate(values)]


class TestSloRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="ops"):
            SloRule(name="r", metric="m", threshold=1.0, op=">=")
        with pytest.raises(ValueError, match="window"):
            SloRule(name="r", metric="m", threshold=1.0, window=0)
        with pytest.raises(ValueError, match="breach_fraction"):
            SloRule(name="r", metric="m", threshold=1.0, breach_fraction=0.0)
        with pytest.raises(ValueError, match="clear_margin"):
            SloRule(name="r", metric="m", threshold=1.0, clear_margin=-0.1)
        rule = SloRule(name="r", metric="m", threshold=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloMonitor([rule, rule])

    def test_burn_rate_needs_a_full_breaching_window(self):
        rule = SloRule(name="spike", metric="m", threshold=10.0, window=3)
        # Two breaches then recovery: never fires.
        monitor = SloMonitor([rule])
        log = monitor.observe_timeline(snapshots("m", [20, 20, 5, 5]))
        assert not log
        # Three consecutive breaches: fires exactly once, at the third.
        monitor = SloMonitor([rule])
        log = monitor.observe_timeline(snapshots("m", [20, 20, 20, 20]))
        assert len(log) == 1
        assert log.alerts[0].fired_ts_s == 3.0
        assert log.alerts[0].active

    def test_breach_fraction_tolerates_healthy_epochs(self):
        rule = SloRule(name="spike", metric="m", threshold=10.0,
                       window=4, breach_fraction=0.75)
        log = SloMonitor([rule]).observe_timeline(
            snapshots("m", [20, 20, 5, 20]))
        assert len(log) == 1
        # The firing snapshot itself was healthy on one pattern; the alert
        # must cite the most recent *breaching* value, never the healthy
        # one that merely completed the window.
        log = SloMonitor([rule]).observe_timeline(
            snapshots("m", [20, 20, 20, 5]))
        assert len(log) == 1
        assert log.alerts[0].value == 20.0

    def test_hysteresis_one_alert_per_excursion(self):
        rule = SloRule(name="spike", metric="m", threshold=10.0, window=2,
                       clear_margin=0.5)
        # Oscillation between breach and barely-below-threshold: the alert
        # stays open (no flap storm), then clears only on the margin-deep
        # recovery at 4.0 <= 10 * (1 - 0.5).
        log = SloMonitor([rule]).observe_timeline(
            snapshots("m", [20, 20, 9, 20, 9, 4]))
        assert len(log) == 1
        alert = log.alerts[0]
        assert alert.fired_ts_s == 2.0
        assert alert.cleared_ts_s == 6.0
        assert not alert.active
        # A fresh excursion after the clear is a fresh alert, and the
        # window restarts from empty (one breach is not enough).
        log = SloMonitor([rule]).observe_timeline(
            snapshots("m", [20, 20, 4, 20, 20]))
        assert len(log) == 2
        assert [alert.fired_ts_s for alert in log] == [2.0, 5.0]

    def test_guard_metric_gates_breaches(self):
        rule = SloRule(name="collapse", metric="goodput", threshold=1.0,
                       op="<", window=2, guard_metric="backlog",
                       guard_threshold=5.0, clear_margin=1.0)
        # Zero goodput with an empty backlog is an idle pool, not an
        # incident: the guard keeps the rule silent.
        idle = snapshots("goodput", [0, 0, 0, 0], extra={"backlog": 0.0})
        assert not SloMonitor([rule]).observe_timeline(idle)
        # The same goodput with demand piling up fires — and the alert
        # clears as soon as the guard disarms (the precondition went away).
        monitor = SloMonitor([rule])
        monitor.observe_timeline(
            snapshots("goodput", [0, 0], extra={"backlog": 50.0}))
        assert len(monitor.alert_log.active) == 1
        monitor.observe(MetricsSnapshot(
            ts_s=10.0, values={"goodput": 0.0, "backlog": 0.0}))
        assert not monitor.alert_log.active

    def test_rate_rule_differentiates_counters(self):
        rule = SloRule(name="storm", metric="preempts", threshold=10.0,
                       rate=True, window=2, clear_margin=0.5)
        # Counter grows by 50/s for two intervals (rates: -, 50, 50, 1, 1).
        log = SloMonitor([rule]).observe_timeline(
            snapshots("preempts", [0, 50, 100, 101, 102]))
        assert len(log) == 1
        alert = log.alerts[0]
        assert alert.value == 50.0
        assert alert.fired_ts_s == 3.0  # second measurable rate
        assert alert.cleared_ts_s == 4.0
        # A counter plateau (rate zero) never fires.
        assert not SloMonitor([rule]).observe_timeline(
            snapshots("preempts", [5, 5, 5, 5]))

    def test_healthy_timeline_is_silent(self):
        monitor = SloMonitor(default_rules(ttft_slo_s=0.5))
        log = monitor.observe_timeline(snapshots(
            "cluster.goodput_tokens_per_s", [500.0] * 6,
            extra={"cluster.backlog": 2.0, "serving.preemptions": 3.0,
                   "serving.ttft_p99_s": 0.1}))
        assert not log
        assert log.describe() == "no alerts fired"

    def test_missing_metric_holds_the_window(self):
        rule = SloRule(name="spike", metric="m", threshold=10.0, window=2)
        monitor = SloMonitor([rule])
        monitor.observe(MetricsSnapshot(ts_s=1.0, values={"m": 20.0}))
        monitor.observe(MetricsSnapshot(ts_s=2.0, values={"other": 1.0}))
        monitor.observe(MetricsSnapshot(ts_s=3.0, values={"m": 20.0}))
        # Two breaches straddling the absent epoch complete the window.
        assert len(monitor.alert_log) == 1

    def test_on_alert_callback_fires_once_per_alert(self):
        seen = []
        rule = SloRule(name="spike", metric="m", threshold=10.0, window=2)
        monitor = SloMonitor([rule], on_alert=seen.append)
        monitor.observe_timeline(snapshots("m", [20, 20, 20, 20]))
        assert len(seen) == 1
        assert isinstance(seen[0], Alert)
        assert seen[0].rule == "spike"

    def test_alert_log_queries(self):
        rule = SloRule(name="spike", metric="m", threshold=10.0, window=2)
        log = SloMonitor([rule]).observe_timeline(
            snapshots("m", [20, 20]))
        assert log and len(log) == 1
        assert log.fired("spike") and not log.fired("other")
        assert log.for_rule("spike") == log.alerts
        assert "spike" in log.describe() and "active" in log.describe()
        assert AlertLog() == AlertLog()  # ClusterResult equality relies on it


# ------------------------------------------------------- cluster integration


def overloaded_cluster(small_model):
    """The memory-tight bursty mix of examples/trace_explorer.py: paged
    admission under a ~3-context KV budget, so the burst preempts hard."""
    profile = ModelMemoryProfile(small_model)
    tight = int(profile.parameter_bytes
                + 3.0 * profile.kv_cache_bytes_per_query(512))
    config = CentConfig(num_devices=6, context_samples=2)
    tenants = [
        TenantSpec("early", model=small_model, sla_latency_s=0.2,
                   trace=with_arrivals(
                       sharegpt_like_queries(30, seed=5),
                       bursty_arrivals(30, 400.0, seed=5))),
        TenantSpec("late", model=small_model, sla_latency_s=0.2,
                   trace=with_arrivals(
                       sharegpt_like_queries(30, seed=6),
                       bursty_arrivals(30, 400.0, seed=6, start_s=0.3))),
    ]
    return ClusterEngine(config, tenants, context_step=512,
                         admission="paged", memory_capacity_bytes=tight)


def underloaded_cluster(small_model):
    """Gentle Poisson traffic with a loose SLO: no rule should fire."""
    config = CentConfig(num_devices=6, context_samples=2)
    tenants = [
        TenantSpec("calm", model=small_model, sla_latency_s=0.5,
                   trace=with_arrivals(
                       sharegpt_like_queries(20, seed=9),
                       poisson_arrivals(20, 20.0, seed=9))),
    ]
    return ClusterEngine(config, tenants, context_step=512)


@pytest.fixture(scope="module")
def overloaded_traced(small_model):
    recorder = TraceRecorder()
    result = overloaded_cluster(small_model).run(
        rebalance="epoch", epoch_s=0.05, telemetry=recorder)
    recorder.finalize()
    return result, recorder


class TestClusterSloIntegration:
    def test_overloaded_run_raises_alerts(self, overloaded_traced):
        result, _ = overloaded_traced
        assert result.alert_log, "the overloaded mix must trip a rule"
        assert result.alert_log.fired("preemption-storm")
        for alert in result.alert_log:
            assert alert.fired_ts_s >= 0.0
            if not alert.active:
                assert alert.cleared_ts_s > alert.fired_ts_s

    def test_underloaded_run_stays_silent(self, small_model):
        recorder = TraceRecorder()
        result = underloaded_cluster(small_model).run(
            rebalance="epoch", epoch_s=0.05, telemetry=recorder)
        assert not result.alert_log

    def test_untraced_run_arms_no_monitor(self, small_model):
        result = overloaded_cluster(small_model).run(
            rebalance="epoch", epoch_s=0.05)
        assert result.alert_log == AlertLog()
        assert result.metrics_timeline == ()

    def test_predicted_rate_gauge_on_timeline(self, overloaded_traced):
        result, _ = overloaded_traced
        assert result.metrics_timeline
        rates = [snapshot.values.get("cluster.predicted_rate_qps")
                 for snapshot in result.metrics_timeline]
        assert all(rate is not None and rate >= 0.0 for rate in rates)
        # The EWMA must actually track the bursts: some epoch forecasts a
        # positive arrival rate.
        assert max(rates) > 0.0

    def test_explicit_monitor_and_callback(self, small_model):
        seen = []
        monitor = SloMonitor(default_rules(), on_alert=seen.append)
        result = overloaded_cluster(small_model).run(
            rebalance="epoch", epoch_s=0.05, telemetry=TraceRecorder(),
            slo_monitor=monitor)
        assert result.alert_log == monitor.alert_log
        assert len(seen) == len(result.alert_log)

    def test_slo_monitor_requires_epoch_timeline(self, small_model):
        with pytest.raises(ValueError, match="metrics timeline"):
            overloaded_cluster(small_model).run(
                slo_monitor=SloMonitor(default_rules()))

    def test_trace_replay_reproduces_live_alerts(self, overloaded_traced,
                                                 small_model):
        result, recorder = overloaded_traced
        events = list(iter_scope_events(recorder))
        pseudo = snapshots_from_trace(events)
        assert len(pseudo) == len(result.metrics_timeline)
        ttft_slo = 0.2  # the tightest tenant SLO the live run armed
        replay = SloMonitor(default_rules(ttft_slo_s=ttft_slo)) \
            .observe_timeline(pseudo)
        live = [(alert.rule, alert.fired_ts_s, alert.cleared_ts_s)
                for alert in result.alert_log]
        replayed = [(alert.rule, alert.fired_ts_s, alert.cleared_ts_s)
                    for alert in replay]
        assert replayed == live

    def test_single_engine_trace_has_no_snapshots(self, system):
        recorder = TraceRecorder()
        ServingEngine(system, context_step=512).simulate(
            fixed_queries(4, prompt_tokens=128, decode_tokens=64),
            telemetry=recorder)
        recorder.finalize()
        assert snapshots_from_trace(iter_scope_events(recorder)) == []


# -------------------------------------------------------------- report + CLI


@pytest.fixture(scope="module")
def trace_path(overloaded_traced, tmp_path_factory):
    _, recorder = overloaded_traced
    path = tmp_path_factory.mktemp("slo") / "cluster.jsonl"
    write_jsonl(recorder, path)
    return path


class TestReportAndCli:
    def test_write_report_is_self_contained(self, overloaded_traced,
                                            tmp_path):
        result, recorder = overloaded_traced
        path = tmp_path / "run.report.html"
        assert write_report(path, iter_scope_events(recorder),
                            result=result, title="integration") == path
        html = path.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        for marker in ("integration", "Replica utilization",
                       "Request attribution", "KV pool occupancy",
                       "Epoch timeline", "SLO alerts", "preemption-storm"):
            assert marker in html, f"report lost its {marker!r} section"
        # Self-contained: no external scripts, stylesheets or images.
        for external in ("<script src", "<link ", "http://", "https://"):
            assert external not in html

    def test_report_replays_alerts_without_result(self, trace_path,
                                                  tmp_path):
        from repro.telemetry import read_jsonl
        path = tmp_path / "replay.report.html"
        write_report(path, read_jsonl(trace_path))
        assert "SLO alerts" in path.read_text()

    def test_cli_attribution_view(self, trace_path, capsys):
        assert telemetry_cli([str(trace_path), "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "slowest" in out and "queued" in out

    def test_cli_utilization_view(self, trace_path, capsys):
        assert telemetry_cli([str(trace_path), "--utilization"]) == 0
        out = capsys.readouterr().out
        assert "per-scope utilization" in out
        assert "KV block-pool occupancy" in out
        assert "CXL link" in out

    def test_cli_slo_view(self, trace_path, capsys):
        assert telemetry_cli([str(trace_path), "--slo",
                              "--ttft-slo", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "preemption-storm" in out

    def test_cli_slo_needs_epochs(self, system, tmp_path, capsys):
        recorder = TraceRecorder()
        ServingEngine(system, context_step=512).simulate(
            fixed_queries(4, prompt_tokens=128, decode_tokens=64),
            telemetry=recorder)
        recorder.finalize()
        path = tmp_path / "single.jsonl"
        write_jsonl(recorder, path)
        assert telemetry_cli([str(path), "--slo"]) == 0
        assert "needs a closed-loop run" in capsys.readouterr().out

    def test_cli_report_flag(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "cli.report.html"
        assert telemetry_cli([str(trace_path), "--report",
                              str(out_path)]) == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        assert out_path.exists()
