"""repro-lint fixture tests: every rule fires on its fixture and stays
silent on the near-miss, escapes (suppression/baseline) behave, and
reverting any real guard/seed/fold/sort fix in the tree re-fires the rule.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, lint_paths, rule_classes, scan_suppressions
from repro.analysis.cli import main as lint_main

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def lint_snippet(tmp_path, relname: str, source: str, **kwargs):
    """Write ``source`` at ``tmp_path/relname`` (path decides rule scope)
    and return the lint findings."""
    target = tmp_path / relname
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], **kwargs)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_and_environ_fire(self, tmp_path):
        result = lint_snippet(tmp_path, "engine.py", """\
            import os
            import time
            import datetime

            def now():
                a = time.time()
                b = time.perf_counter()
                c = datetime.datetime.now()
                d = os.environ["SEED"]
                e = os.getenv("SEED")
                return a, b, c, d, e
            """)
        assert rule_ids(result) == ["determinism"] * 5

    def test_aliased_import_resolves(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            from time import perf_counter as clock

            def f():
                return clock()
            """)
        assert rule_ids(result) == ["determinism"]

    def test_unseeded_rngs_fire(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            import random
            import numpy as np

            def f():
                a = random.random()
                b = np.random.rand(3)
                c = np.random.default_rng()
                return a, b, c
            """)
        assert rule_ids(result) == ["determinism"] * 3

    def test_seeded_rng_near_miss_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            import random
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                alt = random.Random(seed)
                return rng.normal(), alt.random()
            """)
        assert result.findings == []

    def test_engine_clock_arithmetic_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            def advance(clock_s, step_s):
                return clock_s + step_s
            """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# no-set-iteration
# ---------------------------------------------------------------------------


class TestSetIteration:
    def test_set_iteration_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "cluster/engine.py", """\
            def assign(owners, pending):
                for owner in set(owners):
                    pending[owner] = []
                victims = [r for r in {1, 2, 3}]
                order = list(frozenset(owners))
                return victims, order
            """)
        assert rule_ids(result) == ["no-set-iteration"] * 3

    def test_set_typed_name_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "kvstore/pool.py", """\
            def reclaim(chains, pinned):
                cold = set(chains) - pinned
                for chain in cold:
                    chain.release()
            """)
        assert rule_ids(result) == ["no-set-iteration"]

    def test_sorted_set_near_miss_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "cluster/engine.py", """\
            def assign(owners, pending):
                for owner in sorted(set(owners)):
                    pending[owner] = []
                if "a" in set(owners):
                    return max({1, 2}), len(set(owners))
            """)
        assert result.findings == []

    def test_out_of_scope_module_is_silent(self, tmp_path):
        # Same pattern in a non-engine module (e.g. evaluation) is fine.
        result = lint_snippet(tmp_path, "evaluation/tables.py", """\
            def label(names):
                return [n for n in set(names)]
            """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# telemetry-guard
# ---------------------------------------------------------------------------


class TestTelemetryGuard:
    def test_unguarded_emission_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/engine.py", """\
            def finish(rec, clock, request):
                rec.event("request.finished", clock, request.request_id)
            """)
        assert rule_ids(result) == ["telemetry-guard"]

    def test_guarded_emission_near_miss_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/engine.py", """\
            def finish(rec, recorder, telemetry, clock):
                if rec is not None:
                    rec.event("request.finished", clock, 0)
                if recorder is None:
                    return
                recorder.window_step("decode", (), clock, clock, 1, 0)
                if telemetry is not None and clock > 0:
                    telemetry.event("kv.release", clock, 1)
            """)
        assert result.findings == []

    def test_assert_and_else_branch_guards(self, tmp_path):
        result = lint_snippet(tmp_path, "kvstore/allocator.py", """\
            def release(recorder, now_s):
                assert recorder is not None
                recorder.event("kv.release", now_s, 0)

            def evict(rec, now_s):
                if rec is None:
                    pass
                else:
                    rec.event("kv.evict", now_s, 0)
            """)
        assert result.findings == []

    def test_rebinding_receiver_drops_guard(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/engine.py", """\
            def step(state, clock):
                rec = state.recorder
                if rec is None:
                    return
                rec = state.other
                rec.event("request.queued", clock, 0)
            """)
        assert rule_ids(result) == ["telemetry-guard"]

    def test_guard_on_other_name_does_not_leak(self, tmp_path):
        result = lint_snippet(tmp_path, "cluster/control.py", """\
            def epoch(rec, control_rec, clock):
                if rec is not None:
                    control_rec.event("cluster.epoch", clock, None)
            """)
        assert rule_ids(result) == ["telemetry-guard"]


# ---------------------------------------------------------------------------
# float-fold
# ---------------------------------------------------------------------------


class TestFloatFold:
    def test_bare_sum_fires_in_scoped_modules(self, tmp_path):
        result = lint_snippet(tmp_path, "telemetry/attribution.py", """\
            import math
            import numpy as np

            def totals(segments):
                a = sum(seconds for _, seconds in segments)
                b = math.fsum(seconds for _, seconds in segments)
                c = np.sum([1.0, 2.0])
                return a, b, c
            """)
        assert rule_ids(result) == ["float-fold"] * 3

    def test_integer_count_near_miss_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "core/iteration.py", """\
            def count(rows, events):
                finished = sum(1 for r in rows if r.finished)
                blocks = sum(int(e.blocks) for e in events)
                return finished + blocks
            """)
        assert result.findings == []

    def test_explicit_fold_near_miss_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "telemetry/attribution.py", """\
            def segment_sum_s(segments):
                total = 0.0
                for _, seconds in segments:
                    total += seconds
                return total
            """)
        assert result.findings == []

    def test_unscoped_module_is_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "evaluation/tables.py", """\
            def mean(xs):
                return sum(xs) / len(xs)
            """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# slots-discipline
# ---------------------------------------------------------------------------


_HANDLE = """\
class Handle:
    __slots__ = ("request_id", "swap_time_s")

    def __init__(self, request_id):
        self.request_id = request_id
        self.swap_time_s = 0.0

    @property
    def state(self):
        return self.request_id

    @state.setter
    def state(self, value):
        self.request_id = value
"""


class TestSlotsDiscipline:
    def test_out_of_surface_writes_fire(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/request.py", _HANDLE + """\

def use(handle: Handle):
    handle.extra = 1
    setattr(handle, "more", 2)

def make():
    h = Handle(0)
    h.stray = 3
""")
        assert rule_ids(result) == ["slots-discipline"] * 3

    def test_self_write_outside_surface_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/request.py", _HANDLE + """\

    def grow(self):
        self.cache = {}
""")
        assert rule_ids(result) == ["slots-discipline"]

    def test_slotted_init_near_miss_is_silent(self, tmp_path):
        # Writes to declared slots (in __init__ or not) and through the
        # property setter are the declared surface: silent.
        result = lint_snippet(tmp_path, "serving/request.py", _HANDLE + """\

def use(handle: Handle):
    handle.swap_time_s += 1.5
    handle.state = 7
""")
        assert result.findings == []

    def test_concatenated_slots_resolve(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/request.py", """\
            _INTS = ("a", "b")

            class Columns:
                _FLOATS = ("x_s",)
                __slots__ = _INTS + _FLOATS + ("size",)

                def __init__(self):
                    self.size = 0

                def grow(self):
                    self.capacity = 4
            """)
        assert rule_ids(result) == ["slots-discipline"]
        assert "capacity" in result.findings[0].message

    def test_unslotted_and_inheriting_classes_are_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "serving/request.py", """\
            class Plain:
                def grow(self):
                    self.anything = 1

            class Base:
                __slots__ = ("a",)

            class Derived(Base):
                __slots__ = ("b",)

                def grow(self):
                    self.a = 1
            """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# unit-suffix
# ---------------------------------------------------------------------------


class TestUnitSuffix:
    def test_mixed_unit_arithmetic_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "cost/model.py", """\
            def f(swap_time_s, kv_bytes, rate_qps, total_tokens):
                a = swap_time_s + kv_bytes
                swap_time_s -= total_tokens
                stall_s = rate_qps
                return a, stall_s
            """)
        assert rule_ids(result) == ["unit-suffix"] * 3

    def test_seconds_vs_nanoseconds_fires(self, tmp_path):
        result = lint_snippet(tmp_path, "core/iteration.py", """\
            def f(block_latency_ns, decode_time_s):
                return decode_time_s + block_latency_ns
            """)
        assert rule_ids(result) == ["unit-suffix"]

    def test_same_unit_and_conversions_are_silent(self, tmp_path):
        result = lint_snippet(tmp_path, "cost/model.py", """\
            def f(start_s, end_s, kv_bytes, link_bytes, latency_ns):
                span_s = end_s - start_s
                total_bytes = kv_bytes + link_bytes
                latency_s = latency_ns * 1e-9
                rate = kv_bytes / span_s
                return span_s, total_bytes, latency_s, rate
            """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# suppressions, baseline, CLI
# ---------------------------------------------------------------------------


class TestEscapes:
    def test_inline_suppression_same_line(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            import time

            def f():
                # measurement harness, not simulation
                return time.time()  # repro-lint: ignore[determinism]
            """)
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["determinism"]

    def test_inline_suppression_line_above(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            import time

            def f():
                # repro-lint: ignore[determinism] — harness wall clock
                return time.time()
            """)
        assert result.findings == []

    def test_suppression_is_rule_specific(self, tmp_path):
        result = lint_snippet(tmp_path, "mod.py", """\
            import time

            def f():
                return time.time()  # repro-lint: ignore[no-set-iteration]
            """)
        assert rule_ids(result) == ["determinism"]

    def test_scan_suppressions_parses_lists(self):
        table = scan_suppressions(
            "x = 1  # repro-lint: ignore[a, b]\n"
            "# repro-lint: ignore[c]\ny = 2\n")
        assert table[1] == {"a", "b"}
        assert table[3] == {"c"}

    def test_baseline_tolerates_then_goes_stale(self, tmp_path):
        source = """\
            import time

            def f():
                return time.time()
            """
        dirty = lint_snippet(tmp_path, "mod.py", source)
        assert len(dirty.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        Baseline().write(baseline_file, dirty.findings)

        baselined = lint_snippet(tmp_path, "mod2.py", source,
                                 baseline=Baseline.load(baseline_file))
        # Different file -> fingerprint mismatch -> still fails, and the
        # unmatched entry is reported stale.
        assert len(baselined.findings) == 1
        assert len(baselined.stale_baseline) == 1

        again = lint_snippet(tmp_path, "mod.py", source,
                             baseline=Baseline.load(baseline_file))
        assert again.findings == []
        assert [f.rule for f in again.baselined] == ["determinism"]
        assert again.stale_baseline == []

    def test_baseline_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"entries": [1, 2]}), encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(bad)

    def test_cli_exit_codes_and_select(self, tmp_path, capsys):
        target = tmp_path / "serving" / "mod.py"
        target.parent.mkdir()
        target.write_text("import time\nWALL = time.time()\n",
                          encoding="utf-8")
        assert lint_main([str(target)]) == 1
        assert lint_main([str(target), "--select", "no-set-iteration"]) == 0
        assert lint_main([str(target), "--select", "nonsense"]) == 2
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "telemetry-guard" in out

    def test_cli_write_baseline_roundtrip(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nWALL = time.time()\n",
                          encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline",
                          str(baseline)]) == 0
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        assert lint_main([str(target)]) == 1

    def test_syntax_error_fails_run(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n", encoding="utf-8")
        result = lint_paths([target])
        assert not result.ok
        assert result.errors


# ---------------------------------------------------------------------------
# the real tree: clean now, and each fix is load-bearing
# ---------------------------------------------------------------------------


def _mutated(tmp_path, source_file: Path, relname: str, old: str, new: str):
    """Copy a real module with one fix reverted; the revert must apply."""
    source = source_file.read_text(encoding="utf-8")
    mutated = source.replace(old, new)
    assert mutated != source, (
        f"mutation no longer applies to {source_file}; update the test "
        "to track the current spelling of the fix")
    target = tmp_path / relname
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(mutated, encoding="utf-8")
    return target


class TestRealTree:
    def test_src_repro_is_clean_with_empty_baseline(self):
        result = lint_paths([SRC])
        assert result.errors == []
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings)

    def test_cli_module_runs_clean(self):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC)],
            capture_output=True, text=True, env=env, cwd=str(REPO))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_reverting_sorted_set_fix_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "cluster" / "engine.py", "cluster/engine.py",
            "for owner in sorted(set(owners)):",
            "for owner in set(owners):")
        assert "no-set-iteration" in rule_ids(lint_paths([target]))

    def test_reverting_iteration_fold_fix_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "core" / "iteration.py", "core/iteration.py",
            "        total_block_ns = 0.0\n"
            "        for context in contexts:\n"
            "            total_block_ns += self.block_latency_ns(context)\n"
            "        mean_block_ns = total_block_ns / len(contexts)\n",
            "        mean_block_ns = sum(self.block_latency_ns(c) "
            "for c in contexts) / len(contexts)\n")
        assert "float-fold" in rule_ids(lint_paths([target]))

    def test_reverting_attribution_fold_fix_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "telemetry" / "attribution.py",
            "telemetry/attribution.py",
            "            total = 0.0\n"
            "            for _, fraction in timeline:"
            "  # explicit left fold (float-fold)\n"
            "                total += fraction\n"
            "            mean = total / len(timeline)\n",
            "            mean = sum(f for _, f in timeline) "
            "/ len(timeline)\n")
        assert "float-fold" in rule_ids(lint_paths([target]))

    def test_deleting_allocator_guard_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "kvstore" / "allocator.py",
            "kvstore/allocator.py",
            "if recorder is not None and (blocks or swapped):",
            "if blocks or swapped:")
        assert "telemetry-guard" in rule_ids(lint_paths([target]))

    def test_deleting_workload_seed_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "workloads" / "queries.py",
            "workloads/queries.py",
            "np.random.default_rng(seed)",
            "np.random.default_rng()")
        assert "determinism" in rule_ids(lint_paths([target]))

    def test_deleting_request_slot_fires(self, tmp_path):
        target = _mutated(
            tmp_path, SRC / "serving" / "request.py",
            "serving/request.py",
            '        "prefix_pending",\n',
            "")
        assert "slots-discipline" in rule_ids(lint_paths([target]))
