"""Figure 12: CXL controller cost breakdown and cost versus volume."""

from repro.evaluation import figure12_controller_cost, format_table


def test_fig12_controller_cost(benchmark, once, capsys):
    result = once(benchmark, figure12_controller_cost)
    with capsys.disabled():
        print()
        print(format_table(result["nre_breakdown"], "Figure 12: NRE cost breakdown (M$)"))
        print()
        print(format_table(result["cost_vs_volume"], "Figure 12: controller cost vs volume"))
    nre_total = next(row for row in result["nre_breakdown"] if row["component"] == "total")
    assert 15.0 < nre_total["cost_musd"] < 30.0
    volume_rows = {row["volume_millions"]: row for row in result["cost_vs_volume"]}
    # Per-unit cost falls with volume; at the projected 3M volume the paper
    # reports ~$11.9 per controller.
    assert volume_rows[1.0]["total_cost_usd"] > volume_rows[5.0]["total_cost_usd"]
    assert 8.0 < volume_rows[3.0]["total_cost_usd"] < 16.0
