"""Figure 14a: decoding-throughput speedup versus context length."""

from repro.evaluation import figure14a_long_context, format_table


def test_fig14a_long_context(benchmark, once, capsys):
    rows = once(benchmark, figure14a_long_context)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 14a: decoding throughput speedup vs context"))
    by_context = {row["context"]: row for row in rows}
    # The GPU's feasible batch shrinks as the context grows, so CENT's
    # decoding-throughput advantage grows with context length.
    assert by_context[32768]["decode_speedup"] > by_context[4096]["decode_speedup"]
    assert by_context[32768]["gpu_batch"] < by_context[4096]["gpu_batch"]
    assert by_context[4096]["decode_speedup"] > 0.8
