"""Closed-loop cluster studies: re-placement and live KV migration.

Runs the phase-shifted bursty two-tenant mix on a 12-device Llama2-7B pool
twice over: :func:`repro.evaluation.closed_loop_study` pits the closed loop
(now with live KV migration) against static placement, and
:func:`repro.evaluation.migration_study` isolates what live migration buys
over restart-on-migrate.  The per-mode goodput numbers — plus the migration
economics (``migrated_kv_bytes``, ``migration_stall_s``,
``restored_progress_tokens``) — are attached as ``extra_info`` so the CI
benchmark artifact (``BENCH_*.json``) tracks them per PR, and the benchmark
regression gate (``benchmarks/compare_bench.py``) fails the build if a
change quietly erodes them.
"""

from repro.evaluation import closed_loop_study, format_table, migration_study


def test_closed_loop_goodput(benchmark, once, capsys):
    study = once(benchmark, closed_loop_study,
                 num_devices=12, queries_per_tenant=40)
    rows = study["rows"]
    for row in rows:
        benchmark.extra_info[f"aggregate_goodput_tokens_per_s[{row['mode']}]"] = \
            row["aggregate_goodput_tokens_per_s"]
    benchmark.extra_info["closed_loop_gain"] = study["closed_loop_gain"]
    benchmark.extra_info["num_rebalances"] = study["num_rebalances"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Closed-loop vs static cluster control"))

    by_mode = {row["mode"]: row for row in rows}
    assert set(by_mode) == {"static_sla_aware", "closed_loop"}
    # The tentpole claim: closing the loop beats static sla_aware placement
    # on the overloaded bursty mix, and does so by actually re-placing.
    assert by_mode["closed_loop"]["aggregate_goodput_tokens_per_s"] > \
        by_mode["static_sla_aware"]["aggregate_goodput_tokens_per_s"]
    assert by_mode["closed_loop"]["num_rebalances"] >= 1
    # The open-loop path must stay deterministic run to run.
    assert study["static_bit_exact"] is True


def test_migration_goodput(benchmark, once, capsys):
    study = once(benchmark, migration_study,
                 num_devices=12, queries_per_tenant=40)
    rows = study["rows"]
    for row in rows:
        benchmark.extra_info[f"aggregate_goodput_tokens_per_s[{row['mode']}]"] = \
            row["aggregate_goodput_tokens_per_s"]
    benchmark.extra_info["live_gain"] = study["live_gain"]
    benchmark.extra_info["migrated_kv_bytes"] = study["migrated_kv_bytes"]
    benchmark.extra_info["migration_stall_s"] = study["migration_stall_s"]
    benchmark.extra_info["restored_progress_tokens"] = \
        study["restored_progress_tokens"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Live KV migration vs restart-on-migrate"))

    by_mode = {row["mode"]: row for row in rows}
    assert set(by_mode) == {"restart", "live"}
    # The tentpole claim: keeping in-flight KV across a re-placement beats
    # throwing the progress away and restarting.
    assert by_mode["live"]["aggregate_goodput_tokens_per_s"] > \
        by_mode["restart"]["aggregate_goodput_tokens_per_s"]
    # ... and it does so by actually moving KV, not by accident.
    assert by_mode["live"]["num_migrated_requests"] >= 1
    assert by_mode["live"]["migrated_kv_bytes"] > 0
    assert by_mode["live"]["restored_progress_tokens"] > 0
    assert by_mode["restart"]["num_migrated_requests"] == 0
    assert by_mode["restart"]["migrated_kv_bytes"] == 0
