"""Closed-loop cluster study: epoch re-placement vs static placement.

Runs the phase-shifted bursty two-tenant mix of
:func:`repro.evaluation.closed_loop_study` on a 12-device Llama2-7B pool
and prints the static-vs-closed-loop table.  The per-mode goodput numbers
are attached as ``extra_info`` so the CI benchmark artifact
(``BENCH_*.json``) tracks them per PR — and the benchmark regression gate
(``benchmarks/compare_bench.py``) fails the build if a change quietly
erodes them.
"""

from repro.evaluation import closed_loop_study, format_table


def test_closed_loop_goodput(benchmark, once, capsys):
    study = once(benchmark, closed_loop_study,
                 num_devices=12, queries_per_tenant=40)
    rows = study["rows"]
    for row in rows:
        benchmark.extra_info[f"aggregate_goodput_tokens_per_s[{row['mode']}]"] = \
            row["aggregate_goodput_tokens_per_s"]
    benchmark.extra_info["closed_loop_gain"] = study["closed_loop_gain"]
    benchmark.extra_info["num_rebalances"] = study["num_rebalances"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Closed-loop vs static cluster control"))

    by_mode = {row["mode"]: row for row in rows}
    assert set(by_mode) == {"static_sla_aware", "closed_loop"}
    # The tentpole claim: closing the loop beats static sla_aware placement
    # on the overloaded bursty mix, and does so by actually re-placing.
    assert by_mode["closed_loop"]["aggregate_goodput_tokens_per_s"] > \
        by_mode["static_sla_aware"]["aggregate_goodput_tokens_per_s"]
    assert by_mode["closed_loop"]["num_rebalances"] >= 1
    # The open-loop path must stay deterministic run to run.
    assert study["static_bit_exact"] is True
