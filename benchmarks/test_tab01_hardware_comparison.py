"""Table 1: PIM prototypes versus GPU hardware comparison."""

from repro.evaluation import format_table, table1_hardware_comparison


def test_tab01_hardware_comparison(benchmark, once, capsys):
    rows = once(benchmark, table1_hardware_comparison)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table 1: hardware system comparison"))
    by_name = {row["system"]: row for row in rows}
    # PIM internal bandwidth far exceeds the GPU's external bandwidth.
    assert by_name["AiM"]["internal_bw_tbps"] > by_name["A100"]["external_bw_tbps"] * 4
    # The GPU has vastly higher compute intensity (Ops/Byte).
    assert by_name["A100"]["ops_per_byte"] > 100 * by_name["AiM"]["ops_per_byte"]
