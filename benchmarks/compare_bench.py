#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh BENCH JSON against a baseline.

CI uploads every run's ``pytest-benchmark`` JSON (``BENCH_*.json``), whose
``extra_info`` carries the goodput/throughput numbers the serving, cluster
and closed-loop benchmarks attach.  This script downloads nothing itself —
the workflow fetches the previous main-branch artifact — and compares the
perf-relevant ``extra_info`` metrics benchmark by benchmark:

* a higher-is-better metric (goodput, throughput, migrated KV volume,
  restored progress) lower than ``(1 - max_regression)`` times its baseline
  fails the gate (exit code 1), listing every offender;
* a lower-is-better metric (stall time) *higher* than
  ``(1 + max_regression)`` times its baseline fails the same way;
* a missing, empty or malformed baseline is tolerated (exit code 0 with a
  notice): first runs and expired artifacts must not brick the pipeline;
* metrics present on one side only are reported but never fail (new
  benchmarks appear, old ones retire).

Usage::

    python benchmarks/compare_bench.py --baseline DIR_OR_FILE \
        --current BENCH_smoke.json [--max-regression 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: ``extra_info`` keys containing any of these substrings are perf metrics
#: where *lower is worse*; everything else (labels, counters) is ignored.
#: ``requests_per_s`` covers the simulator's own speed
#: (``sim_requests_per_s``, benchmarks/test_sim_speed.py): simulator
#: throughput gates like serving goodput does.  ``hit_rate`` covers the
#: prefix-cache lane (``prefix_hit_rate``,
#: benchmarks/test_prefix_reuse_goodput.py): a shrinking share of shared-KV
#: admissions regresses the prefix cache even when goodput holds.
METRIC_MARKERS = ("goodput", "throughput", "migrated", "restored",
                  "requests_per_s", "hit_rate")

#: ... and these mark metrics where *higher is worse* (stall seconds,
#: telemetry overhead fractions): the gate fails when they grow past the
#: bar instead of when they shrink.
INVERSE_METRIC_MARKERS = ("stall", "overhead")


def is_inverse_metric(key: str) -> bool:
    """Whether ``key`` is a lower-is-better metric (fails on growth)."""
    return any(marker in key.lower() for marker in INVERSE_METRIC_MARKERS)


def is_tracked_metric(key: str, value: object) -> bool:
    """Whether one extra_info entry participates in the regression gate."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    return any(marker in key.lower()
               for marker in METRIC_MARKERS + INVERSE_METRIC_MARKERS)


def extract_metrics(report: dict) -> Dict[Tuple[str, str], float]:
    """``(benchmark fullname, metric key) -> value`` for tracked metrics."""
    metrics: Dict[Tuple[str, str], float] = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name") or "<unnamed>"
        for key, value in (bench.get("extra_info") or {}).items():
            if is_tracked_metric(key, value):
                metrics[(name, key)] = float(value)
    return metrics


def find_baseline_file(path: Path) -> Optional[Path]:
    """The baseline ``BENCH_*.json`` under ``path`` (itself, or newest)."""
    if path.is_file():
        return path
    if path.is_dir():
        candidates = sorted(path.rglob("BENCH_*.json"))
        if candidates:
            return candidates[-1]
    return None


def load_report(path: Path) -> Optional[dict]:
    try:
        with path.open() as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot read {path}: {error}")
        return None
    if not isinstance(report, dict):
        print(f"compare_bench: {path} is not a benchmark report")
        return None
    return report


def compare(
    baseline: Dict[Tuple[str, str], float],
    current: Dict[Tuple[str, str], float],
    max_regression: float,
) -> List[str]:
    """Human-readable failure lines for every metric regressing past the bar."""
    failures: List[str] = []
    for key in sorted(baseline):
        if key not in current:
            print(f"  [gone]  {key[0]} :: {key[1]} (baseline {baseline[key]:.3f})")
            continue
        base, fresh = baseline[key], current[key]
        if base <= 0:
            continue
        change = (fresh - base) / base
        if is_inverse_metric(key[1]):
            regressed = change > max_regression      # stall grew past the bar
            drift = change
        else:
            regressed = change < -max_regression     # goodput shrank past it
            drift = -change
        status = "FAIL" if regressed else "ok"
        print(f"  [{status:4}] {key[0]} :: {key[1]}: "
              f"{base:.3f} -> {fresh:.3f} ({change:+.1%})")
        if regressed:
            failures.append(
                f"{key[0]} :: {key[1]} regressed {drift:.1%} "
                f"({base:.3f} -> {fresh:.3f}; limit {max_regression:.0%})"
            )
    for key in sorted(set(current) - set(baseline)):
        print(f"  [new ]  {key[0]} :: {key[1]} = {current[key]:.3f}")
    return failures


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="baseline BENCH_*.json file or a directory "
                             "holding the downloaded artifact")
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="largest tolerated relative drop (default 0.10)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")

    current_report = load_report(args.current)
    if current_report is None:
        print("compare_bench: no current benchmark report; failing the gate")
        return 1

    baseline_path = find_baseline_file(args.baseline)
    if baseline_path is None:
        print(f"compare_bench: no baseline under {args.baseline}; "
              "first run or expired artifact — gate passes vacuously")
        return 0
    baseline_report = load_report(baseline_path)
    if baseline_report is None:
        print("compare_bench: unreadable baseline — gate passes vacuously")
        return 0

    baseline = extract_metrics(baseline_report)
    current = extract_metrics(current_report)
    if not baseline:
        print("compare_bench: baseline carries no tracked metrics — "
              "gate passes vacuously")
        return 0

    print(f"compare_bench: {baseline_path} vs {args.current} "
          f"(fail below -{args.max_regression:.0%})")
    failures = compare(baseline, current, args.max_regression)
    if failures:
        print(f"\ncompare_bench: {len(failures)} regression(s) past the "
              f"{args.max_regression:.0%} bar:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("compare_bench: no tracked metric regressed past the bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
