"""Figure 14b: QoS — query latency versus throughput operating points."""

from repro.evaluation import figure14b_qos, format_table
from repro.workloads.sla import evaluate_sla


def test_fig14b_qos(benchmark, once, capsys):
    result = once(benchmark, figure14b_qos)
    with capsys.disabled():
        print()
        print(format_table(result["cent"], "Figure 14b: CENT mappings"))
        print()
        print(format_table(result["gpu"], "Figure 14b: GPU batch sweep"))

    # At comparable throughput CENT offers lower query latency than the GPU.
    gpu_best = max(row["throughput_queries_per_min"] for row in result["gpu"])
    comparable = [row for row in result["cent"]
                  if row["throughput_queries_per_min"] >= 0.5 * gpu_best]
    assert comparable, "some CENT mapping must reach at least half the GPU throughput"
    gpu_latency_at_best = min(
        row["query_latency_min"] for row in result["gpu"]
        if row["throughput_queries_per_min"] >= 0.9 * gpu_best)
    assert min(row["query_latency_min"] for row in comparable) < gpu_latency_at_best

    # The SLA helper classifies the same operating points consistently.
    points = [(row["query_latency_min"] * 60.0, row["throughput_queries_per_min"])
              for row in result["cent"] + result["gpu"]]
    report = evaluate_sla(points, sla_latency_s=10 * 60.0)
    assert len(report.compliant_points) + len(report.violating_points) == len(points)
