"""Telemetry overhead: tracing must be free when off and bounded when on.

PR 7 threads a ``TraceRecorder`` through the serving engine, the KV
allocator and the cluster control loop.  The contract is that every
emission site is guarded by a single ``recorder is not None`` check, so a
run with telemetry disabled executes the same vectorized fast path as
before the instrumentation landed.  This benchmark pins that contract to
numbers:

* ``sim_requests_per_s[tracing_off]`` — simulator throughput with
  ``telemetry=None`` on the decode-heavy single-replica trace.  The
  ``requests_per_s`` marker in ``benchmarks/compare_bench.py`` makes it a
  higher-is-better gated metric, so an instrumentation change that slows
  the disabled path fails CI like any other simulator regression.
* ``telemetry_overhead_frac[tracing_on]`` — relative wall-clock cost of
  running the same trace with a live recorder,
  ``(traced - untraced) / untraced``.  The ``overhead`` marker makes it a
  lower-is-better gated metric: tracing-on cost may not silently grow.
* ``attribution_s`` — post-hoc analysis cost: one conservation-verified
  :func:`repro.telemetry.attribute_run` pass over the traced run.
  Reported for visibility (it runs after the simulation, so it can never
  slow the simulator itself).

Tracing-on stays bounded because the hot loops coalesce: decode windows
are one span (never per-token events) and the event-horizon fast-forward
emits a single merged window per closed-form jump.
"""

import time

from repro import CentConfig, CentSystem, LLAMA2_7B, TraceRecorder
from repro.telemetry import attribute_run
from repro.serving.engine import ServingEngine
from repro.workloads.queries import (
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

#: Same decode-heavy regime as ``test_sim_speed.py``, sized down so the
#: trace runs three times (warm-up, untraced, traced) in CI time.
OVERHEAD_REQUESTS = 4_000


def _decode_heavy_trace(count: int, *, rate_qps: float, seed: int = 7):
    queries = sharegpt_like_queries(
        count, seed=seed, mean_prompt_tokens=96.0,
        mean_decode_tokens=1536.0, sigma=0.4, max_context=2048)
    return with_arrivals(
        queries, poisson_arrivals(count, rate_qps=rate_qps, seed=seed + 4))


def _timed_simulate(engine: ServingEngine, trace, *, telemetry=None):
    start = time.perf_counter()
    run = engine.simulate(trace, sla_latency_s=600.0, telemetry=telemetry)
    return time.perf_counter() - start, run


def test_telemetry_overhead(benchmark, once, capsys):
    system = CentSystem(CentConfig(num_devices=16), LLAMA2_7B)
    trace = _decode_heavy_trace(OVERHEAD_REQUESTS, rate_qps=100.0)

    engine = ServingEngine(system, admission="paged")
    # Warm the grid/table caches so both measurements see the same steady
    # state (first-touch block-simulation cost is shared across runs).
    engine.simulate(trace[:200], sla_latency_s=600.0)

    def measure():
        off_s, _ = _timed_simulate(engine, trace)
        recorder = TraceRecorder()
        on_s, traced = _timed_simulate(engine, trace, telemetry=recorder)
        recorder.finalize()
        events = sum(len(scope.events) for scope in recorder.scopes)
        return off_s, on_s, events, traced

    off_s, on_s, events, traced = once(benchmark, measure)
    requests_per_s = OVERHEAD_REQUESTS / off_s
    overhead_frac = (on_s - off_s) / off_s

    # Post-hoc analysis cost: attribution runs on the finished EngineRun,
    # strictly outside the simulation loop (it cannot slow the simulator),
    # but its cost should stay visible as the request count grows.
    start = time.perf_counter()
    attribution = attribute_run(traced)
    attribution_s = time.perf_counter() - start
    assert attribution.num_finished + attribution.num_rejected \
        + attribution.num_unfinished == OVERHEAD_REQUESTS

    benchmark.extra_info["sim_requests_per_s[tracing_off]"] = requests_per_s
    benchmark.extra_info["telemetry_overhead_frac[tracing_on]"] = overhead_frac
    benchmark.extra_info["telemetry_trace_events"] = events
    benchmark.extra_info["attribution_s"] = attribution_s
    with capsys.disabled():
        print()
        print(f"telemetry overhead: {requests_per_s:,.0f} simulated "
              f"requests/s untraced ({off_s:.2f}s wall); tracing on adds "
              f"{overhead_frac:+.1%} ({on_s:.2f}s, {events:,} events); "
              f"attribution of {attribution.num_finished:,} requests in "
              f"{attribution_s * 1e3:.1f}ms")

    # Both runs simulate the same outcome — recording never changes it.
    untraced = engine.simulate(trace, sla_latency_s=600.0)
    assert traced.makespan_s == untraced.makespan_s
    assert len(traced.requests) == len(untraced.requests)

    # Floors/ceilings are machine-independent backstops; the real gate is
    # compare_bench.py tracking both extra_info metrics across runs.  The
    # throughput floor matches test_sim_speed.py (scalar fallback ~300
    # req/s); the overhead ceiling catches per-token event emission or a
    # broken fast-forward coalesce (either costs well over 100%).
    assert requests_per_s > 1_000
    assert overhead_frac < 1.0
    # Windows coalesced: far fewer events than simulated tokens.
    assert 0 < events < OVERHEAD_REQUESTS * 20
