"""Figure 15c: energy efficiency (tokens per Joule), CENT normalised to GPU."""

from repro.evaluation import figure15c_energy_efficiency, format_table


def test_fig15c_energy(benchmark, once, capsys):
    rows = once(benchmark, figure15c_energy_efficiency)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 15c: tokens per Joule (CENT / GPU)"))
    by_model = {row["model"]: row for row in rows}
    # CENT is more energy efficient end-to-end for every model, and the
    # advantage is smallest for Llama2-70B (grouped-query attention).
    for model in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        assert by_model[model]["normalized_tokens_per_joule"] > 1.0
    assert (by_model["Llama2-70B"]["normalized_tokens_per_joule"]
            < by_model["Llama2-7B"]["normalized_tokens_per_joule"])
    assert by_model["geomean"]["normalized_tokens_per_joule"] > 1.5
