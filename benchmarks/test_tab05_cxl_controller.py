"""Table 5: CXL controller custom logic area and power."""

from repro.evaluation import format_table, table5_cxl_controller


def test_tab05_cxl_controller(benchmark, once, capsys):
    rows = once(benchmark, table5_cxl_controller)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table 5: CXL controller area and power (28 nm)"))
    total = next(row for row in rows if row["component"] == "total")
    die = next(row for row in rows if row["component"] == "total_7nm_die")
    # Paper: 7.85 mm^2 / 1.06 W of custom logic, ~19 mm^2 total die at 7 nm.
    assert abs(total["area_mm2"] - 7.85) < 0.1
    assert abs(total["power_w"] - 1.06) < 0.05
    assert 15.0 < die["area_mm2"] < 23.0
