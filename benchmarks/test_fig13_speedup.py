"""Figure 13: CENT speedups over the GPU baseline (latency, throughput, $)."""

from repro.evaluation import figure13_speedups, format_table


def test_fig13_speedups(benchmark, once, capsys):
    result = once(benchmark, figure13_speedups)
    with capsys.disabled():
        print()
        print(format_table(result["latency_critical"],
                           "Figure 13a: latency-critical speedup (batch 1)"))
        print()
        print(format_table(result["throughput_critical"],
                           "Figure 13b: throughput-critical speedup (max batch)"))
        print()
        print(format_table(result["tokens_per_dollar"],
                           "Figure 13c: tokens per dollar"))

    latency = {row["model"]: row for row in result["latency_critical"]}
    throughput = {row["model"]: row for row in result["throughput_critical"]}
    cost = {row["model"]: row for row in result["tokens_per_dollar"]}

    # Latency-critical: CENT (tensor parallel) beats the GPU for every model.
    for model in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        assert latency[model]["speedup"] > 1.0

    # Throughput-critical: CENT wins end-to-end for every model; the GPU wins
    # the compute-bound prefill stage; the 70B advantage is the smallest
    # because grouped-query attention helps the GPU (paper: 1.2x).
    for model in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        assert throughput[model]["end_to_end_speedup"] > 1.0
        assert throughput[model]["prefill_speedup"] < 1.0
    assert throughput["Llama2-70B"]["end_to_end_speedup"] < \
        throughput["Llama2-7B"]["end_to_end_speedup"]
    assert throughput["Llama2-70B"]["end_to_end_speedup"] < 2.0
    assert throughput["geomean"]["end_to_end_speedup"] > 1.5

    # Cost efficiency: CENT generates more tokens per dollar across the board.
    for model in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        assert cost[model]["tokens_per_dollar_ratio"] > 1.0
    assert cost["geomean"]["tokens_per_dollar_ratio"] > 2.0
