"""Figure 14c: CENT latency breakdown across TP/PP mappings."""

from repro.evaluation import figure14c_latency_breakdown, format_table


def test_fig14c_latency_breakdown(benchmark, once, capsys):
    rows = once(benchmark, figure14c_latency_breakdown)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 14c: latency breakdown per mapping"))
    by_mapping = {row["mapping"]: row for row in rows}
    pure_pp = by_mapping["PP=80"]
    pure_tp = by_mapping["TP=32"]
    # PIM latency dominates every mapping.
    for row in rows:
        assert row["pim_fraction"] > 0.5
    # Tensor parallelism reduces the per-token latency but increases the CXL
    # communication share (broadcast/gather per FC layer).
    assert pure_tp["token_latency_ms"] < pure_pp["token_latency_ms"]
    assert pure_tp["cxl_fraction"] > pure_pp["cxl_fraction"]
    # Fractions are a valid partition of the total.
    for row in rows:
        total = (row["pim_fraction"] + row["cxl_fraction"]
                 + row["pnm_fraction"] + row["host_fraction"])
        assert abs(total - 1.0) < 1e-6
