"""Prefix-reuse study benchmark: shared-prefix KV blocks vs fresh allocation.

Runs :func:`repro.evaluation.prefix_reuse_study` on the memory-constrained
Llama2-7B deployment (8 devices, 2x overload) and prints the
goodput-vs-reuse sweep.  The high-reuse sharing goodput and hit rate are
attached as ``extra_info`` (``prefix_goodput_tokens_per_s``,
``prefix_hit_rate``) so the CI benchmark artifact (``BENCH_*.json``) gates
the prefix-cache perf trajectory per PR via ``compare_bench.py``.
"""

from repro.evaluation import format_table, prefix_reuse_study
from repro.models.config import LLAMA2_7B


def test_prefix_reuse_goodput(benchmark, once, capsys):
    study = once(benchmark, prefix_reuse_study,
                 model=LLAMA2_7B, num_devices=8, num_queries=64,
                 reuse_fractions=(0.0, 0.9), context_step=512)
    rows = study["rows"]
    by_key = {(row["reuse_fraction"], row["mode"]): row for row in rows}
    high = max(row["reuse_fraction"] for row in rows)
    shared = by_key[(high, "prefix-shared")]
    fresh = by_key[(high, "no-sharing")]

    benchmark.extra_info["prefix_goodput_tokens_per_s"] = \
        shared["goodput_tokens_per_s"]
    benchmark.extra_info["prefix_hit_rate"] = shared["prefix_hit_rate"]
    benchmark.extra_info["baseline_goodput_tokens_per_s"] = \
        fresh["goodput_tokens_per_s"]
    benchmark.extra_info["goodput_gain"] = study["goodput_gain_by_reuse"][high]
    with capsys.disabled():
        print()
        print(format_table(rows, "Prefix reuse: shared KV blocks vs fresh"))

    # The headline: on the high-reuse overloaded mix, block sharing must beat
    # fresh allocation on SLA goodput, with a substantial hit rate behind it.
    assert shared["goodput_tokens_per_s"] > fresh["goodput_tokens_per_s"]
    assert shared["prefix_hit_rate"] > 0.5
    assert shared["prefix_hit_tokens"] > 0
    # With no reuse in the trace, sharing must be a no-op (identical result).
    zero_shared = by_key[(0.0, "prefix-shared")]
    zero_fresh = by_key[(0.0, "no-sharing")]
    assert zero_shared["goodput_tokens_per_s"] == zero_fresh["goodput_tokens_per_s"]
    assert zero_shared["prefix_hit_rate"] == 0.0
