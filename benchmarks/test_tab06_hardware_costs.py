"""Table 6: hardware costs of the CENT and GPU systems."""

from repro.evaluation import format_table, table6_hardware_costs


def test_tab06_hardware_costs(benchmark, once, capsys):
    rows = once(benchmark, table6_hardware_costs)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table 6: hardware costs"))
    totals = {row["system"]: row["cost_usd"] for row in rows if row["component"] == "total"}
    cent_total = next(v for k, v in totals.items() if k.startswith("CENT"))
    gpu_total = next(v for k, v in totals.items() if k.startswith("GPU"))
    # Paper: $14,873 vs $42,128 — CENT is roughly 2.5-3x cheaper to build.
    assert 12_000 < cent_total < 18_000
    assert 38_000 < gpu_total < 46_000
    assert gpu_total / cent_total > 2.3
