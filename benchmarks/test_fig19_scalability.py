"""Figure 19: CENT scalability on Llama2-70B from 16 to 128 devices."""

from repro.evaluation import figure19_scalability, format_table


def test_fig19_scalability(benchmark, once, capsys):
    rows = once(benchmark, figure19_scalability)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 19: scalability on Llama2-70B"))
    by_devices = {row["devices"]: row for row in rows}
    # Throughput grows with the device count overall (128 devices deliver
    # several times the 16-device throughput).
    assert by_devices[128]["tokens_per_s"] > 3.0 * by_devices[16]["tokens_per_s"]
    # Throughput never decreases when devices are added.
    ordered = [row["tokens_per_s"] for row in sorted(rows, key=lambda r: r["devices"])]
    for previous, current in zip(ordered, ordered[1:], strict=False):
        assert current >= previous * 0.99
    # Plateaus exist: at 44 devices the extra devices beyond 40 idle rather
    # than splitting a block across devices, so utilisation drops.
    assert by_devices[44]["device_utilization"] < 1.0
