"""Preemption study benchmark: paged-KV admission vs full reservation.

Runs :func:`repro.evaluation.overload_preemption_study` on the
memory-constrained Llama2-7B deployment (8 devices, 2.5x overload) and
prints the per-mode goodput / preemption-cost table.  The per-mode goodput
numbers are attached as ``extra_info`` so the CI benchmark artifact
(``BENCH_*.json``) tracks the preemption perf trajectory per PR.
"""

from repro.evaluation import format_table, overload_preemption_study
from repro.models.config import LLAMA2_7B


def test_overload_preemption_goodput(benchmark, once, capsys):
    study = once(benchmark, overload_preemption_study,
                 model=LLAMA2_7B, num_devices=8, num_queries=64,
                 context_step=512)
    rows = study["rows"]
    for row in rows:
        benchmark.extra_info[f"goodput_tokens_per_s[{row['mode']}]"] = \
            row["goodput_tokens_per_s"]
        benchmark.extra_info[f"num_preemptions[{row['mode']}]"] = \
            row["num_preemptions"]
    benchmark.extra_info["best_mode"] = study["best_mode"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Overload: reserve vs paged admission"))

    by_mode = {row["mode"]: row for row in rows}
    assert "reserve" in by_mode
    paged_rows = [row for mode, row in by_mode.items() if mode != "reserve"]
    assert paged_rows
    # On an overloaded memory-constrained deployment, paged admission with
    # preemption must beat full-context reservation on SLA goodput (the
    # calibrated small-model test in tests/test_kvstore.py asserts the
    # strict win; here the large-model smoke keeps the trajectory honest).
    best_paged = max(r["goodput_tokens_per_s"] for r in paged_rows)
    assert best_paged >= by_mode["reserve"]["goodput_tokens_per_s"]
    for row in paged_rows:
        assert row["num_preemptions"] >= 0
        assert row["preemption_stall_time_s"] >= 0
    # The reserve path never preempts.
    assert by_mode["reserve"]["num_preemptions"] == 0
    assert by_mode["reserve"]["swap_time_s"] == 0
