"""Shared benchmark configuration.

Every benchmark regenerates one paper table or figure.  The experiment
functions simulate full inference phases, so each benchmark runs its
experiment exactly once (``rounds=1``) through ``pytest-benchmark`` and then
prints the same rows/series the paper reports, so the output can be compared
with EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
