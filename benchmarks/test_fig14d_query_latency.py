"""Figure 14d: prefill/decoding latency comparison at maximum batch sizes."""

from repro.evaluation import figure14d_query_latency, format_table


def test_fig14d_query_latency(benchmark, once, capsys):
    rows = once(benchmark, figure14d_query_latency)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 14d: prefill/decoding latency vs output size"))
    # Decoding dominates the end-to-end latency, and CENT's decoding latency
    # is lower than the GPU's while its prefill latency is higher (the GPU's
    # prefill is compute-bound and the GPU has more compute throughput).
    longest = max(rows, key=lambda row: row["output_tokens"])
    assert longest["cent_decode_min"] < longest["gpu_decode_min"]
    assert longest["gpu_decode_min"] > longest["gpu_prefill_min"]
    # Decoding latency grows with the output size on both systems.
    decode_cent = [row["cent_decode_min"] for row in rows]
    decode_gpu = [row["gpu_decode_min"] for row in rows]
    assert decode_cent == sorted(decode_cent)
    assert decode_gpu == sorted(decode_gpu)
