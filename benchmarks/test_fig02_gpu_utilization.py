"""Figure 2: GPU query latency vs batch and compute utilisation."""

from repro.evaluation import figure2_gpu_utilization, format_table


def test_fig02_gpu_utilization(benchmark, once, capsys):
    result = once(benchmark, figure2_gpu_utilization)
    with capsys.disabled():
        print()
        print(format_table(result["query_latency"], "Figure 2a: query latency vs batch"))
        print()
        print(format_table(result["utilization"], "Figure 2b: GPU compute utilisation"))
    latencies = [row["query_latency_min"] for row in result["query_latency"]]
    assert latencies == sorted(latencies), "query latency must grow with batch size"
    utilization = {row["model"]: row["gpu_utilization_percent"]
                   for row in result["utilization"]}
    # The decoder-only LLM utilises far less compute than the GEMM-heavy proxies.
    assert utilization["Llama2-70B"] < 40.0
    assert utilization["BERT"] > 2 * utilization["Llama2-70B"]
