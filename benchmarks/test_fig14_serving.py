"""Serving-mode Figure 14b/14d: measured QoS under trace-driven traffic.

Runs the event-driven serving variants of the QoS and query-latency studies
on the Llama2-7B deployment (8 devices) so the benchmark stays fast; the
paper-scale defaults (Llama2-70B, 32 devices) are exercised by
``examples/online_serving.py``.
"""

from repro.evaluation import (
    figure14b_qos_serving,
    figure14d_query_latency_serving,
    format_table,
)
from repro.models.config import LLAMA2_7B


def test_fig14b_qos_serving(benchmark, once, capsys):
    result = once(benchmark, figure14b_qos_serving,
                  model=LLAMA2_7B, num_devices=8, num_queries=60,
                  sla_latency_s=30.0, context_step=512)
    rows = result["cent"]
    # Tracked in the CI BENCH_*.json artifact alongside the timings.
    for row in rows:
        benchmark.extra_info[f"goodput_tokens_per_s[{row['mapping']}]"] = \
            row["goodput_tokens_per_s"]
        benchmark.extra_info[f"throughput_tokens_per_s[{row['mapping']}]"] = \
            row["throughput_tokens_per_s"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 14b (serving): CENT mappings"))

    assert len(rows) >= 3
    for row in rows:
        assert row["completed"] == 60
        assert 0 < row["ttft_p50_s"] <= row["ttft_p99_s"]
        assert 0 < row["tbt_p50_s"] <= row["tbt_p99_s"]
        assert row["goodput_tokens_per_s"] <= row["throughput_tokens_per_s"]
    # The paper's QoS trade-off: tensor parallelism buys query latency (the
    # full-TP mapping is fastest per query), pipeline parallelism buys batch
    # slots; the measured per-token time shrinks as TP grows.
    pure_pp = max(rows, key=lambda r: r["slots"])
    pure_tp = min(rows, key=lambda r: r["slots"])
    assert pure_tp["query_latency_p50_s"] < pure_pp["query_latency_p50_s"]
    assert pure_tp["tbt_p50_s"] < pure_pp["tbt_p50_s"]
    report = result["sla"]
    assert (len(report.compliant_points) + len(report.violating_points)) == len(rows)


def test_fig14d_query_latency_serving(benchmark, once, capsys):
    rows = once(benchmark, figure14d_query_latency_serving,
                model=LLAMA2_7B, num_devices=8, output_sizes=(128, 512, 1024),
                queries_per_point=16, context_step=512)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 14d (serving): latency vs output size"))

    assert [row["output_tokens"] for row in rows] == [128, 512, 1024]
    # Decoding dominates and grows with the output length.
    decode = [row["decode_p50_min"] for row in rows]
    assert decode == sorted(decode)
    for row in rows:
        assert row["decode_p50_min"] > row["ttft_p50_min"] > 0
