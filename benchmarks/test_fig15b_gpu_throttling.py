"""Figure 15b: GPU SM-clock and board-power behaviour across phases."""

from repro.evaluation import figure15b_gpu_throttling, format_table


def test_fig15b_gpu_throttling(benchmark, once, capsys):
    rows = once(benchmark, figure15b_gpu_throttling)
    with capsys.disabled():
        print()
        print(format_table(rows[:6] + rows[-6:], "Figure 15b: GPU clock/power trace (ends)"))
    phases = {row["phase"] for row in rows}
    assert {"init", "prefill", "decode"} <= phases
    by_phase = {phase: [row for row in rows if row["phase"] == phase] for phase in phases}
    # Initialisation runs at the maximum clock and low power; prefill throttles
    # the clock to stay inside the TDP; decoding raises the clock again while
    # power stays near the TDP.
    assert by_phase["init"][0]["sm_clock_mhz"] == 1410.0
    assert by_phase["prefill"][0]["sm_clock_mhz"] < by_phase["decode"][0]["sm_clock_mhz"]
    assert by_phase["prefill"][0]["board_power_w"] <= 300.0
    assert by_phase["decode"][0]["board_power_w"] > 0.9 * 300.0
    assert by_phase["init"][0]["board_power_w"] < by_phase["prefill"][0]["board_power_w"]
