"""Figure 18: CENT versus the AttAcc and NeuPIM GPU-PIM baselines."""

from repro.evaluation import figure18_gpu_pim, format_table


def test_fig18_gpu_pim(benchmark, once, capsys):
    result = once(benchmark, figure18_gpu_pim)
    with capsys.disabled():
        print()
        print(format_table(result["attacc"], "Figure 18a: CENT vs AttAcc (GPT3-175B)"))
        print()
        print(format_table(result["neupim"], "Figure 18b: CENT vs NeuPIM (GPT3-175B)"))
    # Cost efficiency: CENT processes more tokens per dollar than both
    # GPU-PIM baselines in every scenario (paper: 1.8-3.7x and 1.8-5.3x).
    for row in result["attacc"]:
        assert row["tokens_per_dollar_ratio"] > 1.0
    for row in result["neupim"]:
        assert row["tokens_per_dollar_ratio"] > 1.0
    # Raw throughput is mixed: the GPU-PIM systems can win at short sequence
    # lengths where batching boosts the FC layers, so CENT's throughput ratio
    # against AttAcc stays within the same order of magnitude.
    ratios = [row["throughput_ratio"] for row in result["attacc"]]
    assert min(ratios) > 0.2 and max(ratios) < 6.0
