"""Multi-tenant cluster study: placement policy vs aggregate SLA goodput.

Runs the asymmetric chat + batch tenant mix of
:func:`repro.evaluation.multi_tenant_policy_study` on the Llama2-7B
deployment (8 devices) and prints the per-policy goodput / fairness /
utilisation table.  The per-policy goodput numbers are attached as
``extra_info`` so the CI benchmark artifact (``BENCH_*.json``) tracks the
cluster perf trajectory per PR.
"""

from repro.evaluation import format_table, multi_tenant_policy_study
from repro.models.config import LLAMA2_7B


def test_multi_tenant_policy_goodput(benchmark, once, capsys):
    study = once(benchmark, multi_tenant_policy_study,
                 model=LLAMA2_7B, num_devices=8,
                 chat_queries=80, batch_queries=10, context_step=512)
    rows = study["rows"]
    for row in rows:
        benchmark.extra_info[f"aggregate_goodput_tokens_per_s[{row['policy']}]"] = \
            row["aggregate_goodput_tokens_per_s"]
    benchmark.extra_info["best_policy"] = study["best_policy"]
    with capsys.disabled():
        print()
        print(format_table(rows, "Multi-tenant cluster: placement policies"))

    by_policy = {row["policy"]: row for row in rows}
    assert set(by_policy) == {"static", "proportional", "sla_aware"}
    # A demand-aware policy must at least match the naive static partition
    # on aggregate SLA goodput (the calibrated small-model study in
    # tests/test_cluster.py asserts a strict win).
    adaptive = max(by_policy["proportional"]["aggregate_goodput_tokens_per_s"],
                   by_policy["sla_aware"]["aggregate_goodput_tokens_per_s"])
    assert adaptive >= by_policy["static"]["aggregate_goodput_tokens_per_s"]
    for row in rows:
        assert 0 <= row["max_min_goodput_ratio"] <= 1
        assert 0 <= row["jain_fairness_index"] <= 1
        assert 0 < row["pool_utilization"] <= 1
