"""Table 4: evaluated system configurations, including 3-year TCO."""

from repro.evaluation import format_table, table4_system_configurations


def test_tab04_system_config(benchmark, once, capsys):
    rows = once(benchmark, table4_system_configurations)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table 4: system configurations"))
    cent = next(row for row in rows if row["system"] == "CENT")
    gpu = next(row for row in rows if row["system"] == "GPU")
    # CENT: more memory capacity and internal bandwidth, lower TCO;
    # GPU: higher compute throughput.
    assert cent["memory_gb"] > gpu["memory_gb"]
    assert cent["peak_bandwidth_tbps"] > 50 * gpu["peak_bandwidth_tbps"]
    assert gpu["compute_tflops"] > cent["compute_tflops"]
    assert cent["owned_tco_per_hour"] < gpu["owned_tco_per_hour"]
    assert cent["rental_tco_per_hour"] < gpu["rental_tco_per_hour"]
    # Absolute rates land near the paper's 0.73 / 1.76 $/hour.
    assert 0.5 < cent["owned_tco_per_hour"] < 1.1
    assert 1.3 < gpu["owned_tco_per_hour"] < 2.3
