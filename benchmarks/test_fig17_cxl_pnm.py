"""Figure 17: CENT versus the CXL-PNM baseline on OPT-66B."""

from repro.evaluation import figure17_cxl_pnm, format_table


def test_fig17_cxl_pnm(benchmark, once, capsys):
    rows = once(benchmark, figure17_cxl_pnm)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 17: CENT vs CXL-PNM (OPT-66B)"))
    cent = next(row for row in rows if row["system"] == "CENT")
    pnm_rows = [row for row in rows if row["system"] == "CXL-PNM"]
    best_pnm = max(pnm_rows, key=lambda row: row["tokens_per_s"])
    # CENT provides much higher aggregate bandwidth and higher throughput than
    # any evaluated CXL-PNM configuration (the paper reports 4.5x over the
    # largest one), while CXL-PNM offers more memory capacity per device.
    assert cent["tokens_per_s"] > 1.5 * best_pnm["tokens_per_s"]
    eight_device = next(row for row in pnm_rows if row["devices"] == 8)
    assert cent["tokens_per_s"] > 3.0 * eight_device["tokens_per_s"]
    assert cent["memory_bandwidth_tbps"] > 5 * best_pnm["memory_bandwidth_tbps"]
    single_device = next(row for row in pnm_rows if row["devices"] == 1)
    assert single_device["memory_capacity_gb"] > 500 - 1
    # CXL-PNM throughput grows with its device count.
    throughputs = [row["tokens_per_s"] for row in sorted(pnm_rows, key=lambda r: r["devices"])]
    assert throughputs == sorted(throughputs)
