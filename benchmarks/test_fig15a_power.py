"""Figure 15a: power consumption of CENT and GPU deployments."""

from repro.evaluation import figure15a_power, format_table


def test_fig15a_power(benchmark, once, capsys):
    rows = once(benchmark, figure15a_power)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 15a: average power consumption"))
    for row in rows:
        # One A100 draws several times more power than one CENT device
        # (the paper reports roughly 8x).
        assert row["gpu_power_per_device_w"] > 3 * row["cent_power_per_device_w"]
        # The deployments are sized for comparable total power (same order of
        # magnitude, within ~3x of each other).
        assert 0.3 < row["cent_power_w"] / row["gpu_power_w"] < 3.0
