"""Figure 1: Llama2-70B GPU throughput and memory requirement vs batch size."""

from repro.evaluation import figure1_gpu_throughput, format_table


def test_fig01_gpu_throughput(benchmark, once, capsys):
    rows = once(benchmark, figure1_gpu_throughput)
    with capsys.disabled():
        print()
        print(format_table(rows, "Figure 1: GPU throughput and memory requirement"))
    # Throughput saturates once the memory requirement exceeds GPU memory:
    # every batch size beyond the capacity limit delivers the same (plateau)
    # throughput, and longer contexts hit the plateau at smaller batches.
    for context in {row["context"] for row in rows}:
        context_rows = [row for row in rows if row["context"] == context]
        infeasible = [row for row in context_rows if not row["fits_in_memory"]]
        plateau = {round(row["throughput_tokens_per_s"], 3) for row in infeasible}
        assert len(plateau) <= 1
    largest_feasible = {
        context: max((row["batch"] for row in rows
                      if row["context"] == context and row["fits_in_memory"]), default=0)
        for context in {row["context"] for row in rows}
    }
    assert largest_feasible[32768] < largest_feasible[4096]
