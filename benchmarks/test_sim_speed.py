"""Simulator throughput: simulated requests per second of wall clock.

Unlike every other benchmark (which regenerates a paper figure), this one
measures the *simulator itself* — the vectorized iteration core of
``ServingEngine.advance`` — because raw simulator speed is what caps the
scale of every cluster study the repo can run.  Two traces:

* a 10^4-request single-replica trace in the engine's dominant large-trace
  regime (short prompts, long decodes), where the event-horizon
  fast-forward advances whole decode windows in closed form;
* a 10^3-request two-tenant closed-loop trace through the full cluster
  control loop (routing, epochs, re-placement, parallel replicas).

The headline ``sim_requests_per_s`` numbers are attached as ``extra_info``;
the ``requests_per_s`` marker in ``benchmarks/compare_bench.py`` makes them
higher-is-better gated metrics, so a change that quietly slows the
simulator fails CI exactly like one that erodes serving goodput.
``sim_speedup_vs_scalar`` (vectorized vs ``vectorize=False`` on a prefix of
the same trace) is attached unmarked, for the record only: the scalar
reference path pays view-object overhead and is not a gated number.
"""

import time

from repro import CentConfig, CentSystem, LLAMA2_7B
from repro.cluster.engine import ClusterEngine
from repro.cluster.tenant import TenantSpec
from repro.serving.engine import ServingEngine
from repro.workloads.queries import (
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

#: Single-replica trace: 10^4 requests, decode-heavy (the regime the
#: fast-forward targets — think long-generation / reasoning workloads).
SINGLE_REPLICA_REQUESTS = 10_000
#: Closed-loop trace: 10^3 requests split across two tenants.
CLOSED_LOOP_REQUESTS = 1_000


def _decode_heavy_trace(count: int, *, rate_qps: float, seed: int = 7):
    queries = sharegpt_like_queries(
        count, seed=seed, mean_prompt_tokens=96.0,
        mean_decode_tokens=1536.0, sigma=0.4, max_context=2048)
    return with_arrivals(
        queries, poisson_arrivals(count, rate_qps=rate_qps, seed=seed + 4))


def _timed_simulate(engine: ServingEngine, trace, sla_latency_s: float):
    start = time.perf_counter()
    engine.simulate(trace, sla_latency_s=sla_latency_s)
    return time.perf_counter() - start


def test_single_replica_sim_speed(benchmark, once, capsys):
    system = CentSystem(CentConfig(num_devices=16), LLAMA2_7B)
    trace = _decode_heavy_trace(SINGLE_REPLICA_REQUESTS, rate_qps=100.0)

    engine = ServingEngine(system, admission="paged")
    # Warm the grid/table caches so the measurement is simulator speed,
    # not first-touch block-simulation cost (shared across all runs).
    engine.simulate(trace[:200], sla_latency_s=600.0)
    elapsed = once(benchmark, _timed_simulate, engine, trace,
                   sla_latency_s=600.0)
    requests_per_s = SINGLE_REPLICA_REQUESTS / elapsed

    # Scalar reference on a prefix (the full scalar trace takes minutes):
    # same engine semantics with every vectorized path switched off.
    prefix = trace[:500]
    scalar = ServingEngine(system, admission="paged", vectorize=False)
    scalar.simulate(prefix, sla_latency_s=600.0)
    scalar_s = _timed_simulate(scalar, prefix, sla_latency_s=600.0)
    vector_s = _timed_simulate(engine, prefix, sla_latency_s=600.0)
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")

    benchmark.extra_info["sim_requests_per_s[single_replica]"] = requests_per_s
    benchmark.extra_info["sim_trace_requests"] = SINGLE_REPLICA_REQUESTS
    benchmark.extra_info["sim_speedup_vs_scalar"] = speedup
    with capsys.disabled():
        print()
        print(f"single-replica sim speed: {requests_per_s:,.0f} "
              f"simulated requests/s ({elapsed:.2f}s wall for "
              f"{SINGLE_REPLICA_REQUESTS:,} requests); "
              f"{speedup:.1f}x vs scalar path on a 500-request prefix")

    # Floors are set far below measured values (machine-dependent), high
    # enough to catch the vectorized core silently falling back to the
    # scalar path (~300 req/s on this trace).
    assert requests_per_s > 1_000
    assert speedup > 2.0


def test_closed_loop_sim_speed(benchmark, once, capsys):
    per_tenant = CLOSED_LOOP_REQUESTS // 2
    tenants = []
    for index, name in enumerate(("alpha", "beta")):
        queries = sharegpt_like_queries(
            per_tenant, seed=5 + index, mean_prompt_tokens=96.0,
            mean_decode_tokens=512.0, sigma=0.5, max_context=2048)
        trace = with_arrivals(
            queries,
            poisson_arrivals(per_tenant, rate_qps=25.0, seed=15 + index))
        tenants.append(TenantSpec(name, model=LLAMA2_7B, trace=trace))

    def closed_loop():
        cluster = ClusterEngine(CentConfig(num_devices=32), tenants,
                                admission="paged")
        start = time.perf_counter()
        cluster.run(rebalance="epoch", epoch_s=10.0)
        return time.perf_counter() - start

    elapsed = once(benchmark, closed_loop)
    requests_per_s = CLOSED_LOOP_REQUESTS / elapsed
    benchmark.extra_info["sim_requests_per_s[closed_loop]"] = requests_per_s
    benchmark.extra_info["sim_trace_requests"] = CLOSED_LOOP_REQUESTS
    with capsys.disabled():
        print()
        print(f"closed-loop sim speed: {requests_per_s:,.0f} simulated "
              f"requests/s ({elapsed:.2f}s wall for "
              f"{CLOSED_LOOP_REQUESTS:,} requests, 2 tenants, epoch control)")
    assert requests_per_s > 5
