#!/usr/bin/env python3
"""Trace explorer: follow one live-migrated request through the cluster.

A deliberately stressful closed-loop scenario built to light up every
telemetry event family at once: two tenants of a small Llama-style model
share a 6-device pool with *phase-shifted* heavy bursts (``late`` fires
while ``early`` is still draining), paged admission runs under a KV
budget of only ~3 full contexts per replica (so the victim picker must
preempt), and the epoch controller re-places the pool mid-burst (so
in-flight requests live-migrate between replicas).

The script records the run with :class:`repro.telemetry.TraceRecorder`,
prints the trace overview, the epoch decision audit
(projected-gain-vs-stall arithmetic of every applied rebalance), the
longest preemption chains, and then walks one live-migrated request's
full lifecycle — queued on its source replica, preempted under KV
pressure, swapped out for migration, resumed at its original progress on
the rebuilt replica — following the ``cluster.migrate`` correlation
event across scopes.

It ends by exporting the trace twice::

    trace_explorer.perfetto.json   # chrome://tracing / ui.perfetto.dev
    trace_explorer.jsonl           # python -m repro.telemetry

Run with::

    python examples/trace_explorer.py [--out PREFIX]
"""

import argparse

from repro.cluster.engine import ClusterEngine
from repro.cluster.tenant import TenantSpec
from repro.core.config import CentConfig
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.telemetry import (
    TraceRecorder,
    attribution_table,
    epoch_audit,
    overview,
    preemption_chains,
    request_timeline,
    utilization_summary,
    write_jsonl,
    write_perfetto,
    write_report,
)
from repro.telemetry.export import iter_scope_events
from repro.workloads.queries import (
    bursty_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

POOL_DEVICES = 6
QUERIES_PER_TENANT = 30
BURST_QPS = 400.0
#: KV budget per replica: weights + ~3 full 512-token contexts, so paged
#: admission oversubscribes immediately and the victim picker must work.
KV_CONTEXTS = 3.0

SMALL_MODEL = ModelConfig(name="small-llama", num_layers=8, d_model=1024,
                          num_heads=16, num_kv_heads=4, d_ff=2816,
                          vocab_size=32000, max_context=2048)


def build_cluster() -> ClusterEngine:
    profile = ModelMemoryProfile(SMALL_MODEL)
    tight = int(profile.parameter_bytes
                + KV_CONTEXTS * profile.kv_cache_bytes_per_query(512))
    tenants = [
        TenantSpec("early", model=SMALL_MODEL, sla_latency_s=0.2,
                   trace=with_arrivals(
                       sharegpt_like_queries(QUERIES_PER_TENANT, seed=5),
                       bursty_arrivals(QUERIES_PER_TENANT, BURST_QPS,
                                       seed=5))),
        TenantSpec("late", model=SMALL_MODEL, sla_latency_s=0.2,
                   trace=with_arrivals(
                       sharegpt_like_queries(QUERIES_PER_TENANT, seed=6),
                       bursty_arrivals(QUERIES_PER_TENANT, BURST_QPS,
                                       seed=6, start_s=0.3))),
    ]
    return ClusterEngine(CentConfig(num_devices=POOL_DEVICES,
                                    context_samples=2),
                         tenants, context_step=512,
                         admission="paged", memory_capacity_bytes=tight)


def banner(title: str) -> str:
    return f"\n=== {title} " + "=" * max(0, 66 - len(title))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PREFIX", default="trace_explorer",
                        help="output prefix for PREFIX.perfetto.json and "
                             "PREFIX.jsonl (default: trace_explorer)")
    cli = parser.parse_args()

    recorder = TraceRecorder()
    cluster = build_cluster()
    result = cluster.run(rebalance="epoch", epoch_s=0.05, telemetry=recorder)
    recorder.finalize()
    events = list(iter_scope_events(recorder))

    print(banner("trace overview"))
    print(overview(events))

    print(banner("epoch decision audit"))
    print(epoch_audit(events))

    print(banner("preemption chains"))
    print(preemption_chains(events))

    migrations = [e for e in events if e["name"] == "cluster.migrate"
                  and e["args"]["mode"] == "live" and e["args"]["accepted"]]
    print(banner("one migrated request, end to end"))
    if migrations:
        first = min(migrations, key=lambda e: e["ts_s"])
        print(f"following request {first['args']['source_request']} "
              f"of scope {first['args']['source_scope']} "
              f"({len(migrations)} live migrations recorded, "
              f"{result.num_rebalances} re-placements applied):\n")
        print(request_timeline(events, first["args"]["source_request"],
                               scope=first["args"]["source_scope"]))
    else:
        print("no live migrations this run — re-tune the burst phase shift")

    print(banner("where did the time go (attribution)"))
    print(attribution_table(events, top=10))

    print(banner("utilization accounting"))
    print(utilization_summary(events))

    print(banner("SLO alert log"))
    if result.alert_log:
        print(f"{len(result.alert_log)} alerts "
              f"({len(result.alert_log.active)} still active at end of run):")
        print(result.alert_log.describe())
    else:
        print("no alerts fired — the stock rules found this run healthy")

    perfetto = write_perfetto(recorder, f"{cli.out}.perfetto.json")
    lines = write_jsonl(recorder, f"{cli.out}.jsonl")
    report = write_report(f"{cli.out}.report.html", events, result=result,
                          title="trace_explorer")
    print(banner("exports"))
    print(f"{perfetto} Perfetto events -> {cli.out}.perfetto.json "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    print(f"{lines} records -> {cli.out}.jsonl "
          f"(inspect with python -m repro.telemetry {cli.out}.jsonl)")
    print(f"HTML report -> {report}")


if __name__ == "__main__":
    main()
