#!/usr/bin/env python3
"""Serving Llama2-70B: comparing parallelisation strategies against a GPU.

Reproduces the paper's serving scenario (512-token prompts, 3584 generated
tokens) on a 32-device CENT system, sweeping the mapping from pure pipeline
parallelism (best throughput) over hybrid TP-PP configurations to pure tensor
parallelism (best latency), and compares against the 4x A100 vLLM baseline.

Run with::

    python examples/llama70b_serving.py
"""

from repro import CentConfig, CentSystem, LLAMA2_70B
from repro.baselines.gpu import GPUSystem
from repro.evaluation.analysis import cent_mappings_for
from repro.workloads.batching import max_feasible_batch

PROMPT_TOKENS = 512
DECODE_TOKENS = 3584


def main() -> None:
    config = CentConfig(num_devices=32, context_samples=3)
    system = CentSystem(config, LLAMA2_70B)

    print(f"{'mapping':<14} {'batch':>5} {'tokens/s':>10} {'query latency':>14} "
          f"{'PIM':>6} {'CXL':>6} {'PNM':>6}")
    for name, plan in cent_mappings_for(LLAMA2_70B, config.num_devices).items():
        result = system.run_inference(PROMPT_TOKENS, DECODE_TOKENS, plan=plan,
                                      with_power=False)
        fractions = result.token_latency_breakdown.fractions()
        print(f"{name:<14} {result.queries_in_flight:>5} "
              f"{result.end_to_end_throughput_tokens_per_s:>10,.0f} "
              f"{result.query_latency_s / 60:>12.2f} m "
              f"{100 * fractions['pim']:>5.1f}% "
              f"{100 * fractions['cxl']:>5.1f}% "
              f"{100 * fractions['pnm']:>5.1f}%")

    gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
    average_context = PROMPT_TOKENS + DECODE_TOKENS // 2
    batch = max_feasible_batch(LLAMA2_70B, gpu.total_memory_bytes, average_context,
                               requested_batch=128)
    latency = gpu.query_latency_s(batch, PROMPT_TOKENS, DECODE_TOKENS)
    throughput = batch * DECODE_TOKENS / latency
    print()
    print(f"{'GPU 4xA100':<14} {batch:>5} {throughput:>10,.0f} {latency / 60:>12.2f} m")


if __name__ == "__main__":
    main()
