#!/usr/bin/env python3
"""Multi-tenant serving: two models share one CXL-PIM device pool.

An interactive Llama2-7B chat tenant and an offline Llama2-13B batch tenant
share a 16-device pool.  The cluster layer partitions the pool's devices
per tenant (``sla_aware`` placement gives the tight-SLO, high-priority chat
tenant headroom), routes every arriving request to a replica, and serves
each replica with the unmodified continuous-batching engine.  Reported per
tenant: SLA goodput against that tenant's own latency SLO; reported for the
pool: aggregate goodput, max-min fairness, Jain's index and utilisation.

Run with::

    python examples/multi_tenant_serving.py
"""

from repro import CentConfig, ClusterEngine, LLAMA2_7B, LLAMA2_13B, SlaClass, TenantSpec
from repro.workloads import (
    bursty_arrivals,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

POOL_DEVICES = 16
CHAT_QUERIES = 80
BATCH_QUERIES = 16


def build_tenants():
    chat_rate_qps = 8.0     # open, user-facing traffic
    batch_rate_qps = 0.5    # background summarisation jobs
    chat = TenantSpec(
        "chat-7b",
        model=LLAMA2_7B,
        trace=with_arrivals(
            sharegpt_like_queries(CHAT_QUERIES, seed=11),
            bursty_arrivals(CHAT_QUERIES, chat_rate_qps, burstiness=4.0, seed=11),
        ),
        sla_class=SlaClass.INTERACTIVE,
        priority=2.0,
    )
    batch = TenantSpec(
        "batch-13b",
        model=LLAMA2_13B,
        trace=with_arrivals(
            sharegpt_like_queries(BATCH_QUERIES, seed=23,
                                  mean_prompt_tokens=400.0, mean_decode_tokens=600.0),
            poisson_arrivals(BATCH_QUERIES, batch_rate_qps, seed=23),
        ),
        sla_class=SlaClass.BATCH,
    )
    return [chat, batch]


def report(result) -> None:
    print(f"placement={result.placement_policy}  routing={result.routing_policy}  "
          f"devices used {result.devices_used}/{result.pool_devices}")
    for name, tenant in result.tenant_results.items():
        frac = result.tenant_goodput_fractions[name]
        print(f"  {name:10s} devices={result.tenant_devices[name]:2d}  "
              f"completed {tenant.num_completed}/{tenant.num_requests}  "
              f"TTFT p99 {tenant.ttft.p99_s:6.2f} s  "
              f"latency p99 {tenant.query_latency.p99_s:6.2f} s  "
              f"goodput {tenant.goodput_tokens_per_s:7.1f} tok/s "
              f"({100 * frac:.1f}% of offered tokens within the "
              f"{tenant.sla_latency_s:.0f} s SLA)")
    print(f"  pool: aggregate goodput {result.aggregate_goodput_tokens_per_s:,.0f} tok/s, "
          f"max-min fairness {result.max_min_goodput_ratio:.3f}, "
          f"Jain index {result.jain_fairness_index:.3f}, "
          f"utilisation {100 * result.pool_utilization:.1f}%\n")


def main() -> None:
    # One ClusterEngine for the whole sweep: the placement-policy override
    # on run() keeps the policy-independent capability probes cached across
    # policies (CentSystem.serve_cluster is the one-shot convenience path).
    engine = ClusterEngine(
        CentConfig(num_devices=POOL_DEVICES, context_samples=3),
        build_tenants(),
        routing_policy="sla_deadline",
        context_step=512,
    )
    for placement in ("static", "sla_aware"):
        report(engine.run(placement_policy=placement))


if __name__ == "__main__":
    main()
