#!/usr/bin/env python3
"""Online serving of Llama2-70B under Poisson and bursty traffic.

Replays a 200-query ShareGPT-like trace through the event-driven serving
engine on a 32-device CENT system, comparing a Poisson arrival process with
a bursty (Gamma-renewal) one at the same average rate, and reports the
measured TTFT / time-between-tokens / query-latency percentiles and the
SLA-compliant goodput — numbers the closed-form batch path cannot produce.

Run with::

    python examples/online_serving.py
"""

from repro import CentConfig, CentSystem, LLAMA2_70B, ServingEngine
from repro.workloads import (
    bursty_arrivals,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

NUM_QUERIES = 200
UTILIZATION = 0.7      # offered load relative to the estimated capacity
SLA_LATENCY_S = 60.0   # MLPerf-style per-query latency bound


def report(name: str, result) -> None:
    print(f"--- {name} ---")
    print(f"  completed {result.num_completed}/{result.num_requests} queries "
          f"in {result.makespan_s:.1f} s "
          f"(peak memory {result.peak_memory_bytes / 2**30:.0f} GiB "
          f"of {result.memory_capacity_bytes / 2**30:.0f} GiB)")
    print(f"  TTFT          p50 {result.ttft.p50_s:7.2f} s   p99 {result.ttft.p99_s:7.2f} s")
    print(f"  TBT           p50 {result.tbt.p50_s * 1e3:7.1f} ms  p99 {result.tbt.p99_s * 1e3:7.1f} ms")
    print(f"  query latency p50 {result.query_latency.p50_s:7.2f} s   "
          f"p99 {result.query_latency.p99_s:7.2f} s")
    print(f"  throughput {result.throughput_tokens_per_s:,.0f} tokens/s, "
          f"goodput {result.goodput_tokens_per_s:,.0f} tokens/s "
          f"({100 * (1 - result.sla_violation_fraction):.1f}% of queries "
          f"within the {result.sla_latency_s:.0f} s SLA)")


def main() -> None:
    system = CentSystem(CentConfig(num_devices=32, context_samples=3), LLAMA2_70B)
    engine = ServingEngine(system)
    queries = sharegpt_like_queries(NUM_QUERIES)

    rate = UTILIZATION * engine.estimated_capacity_qps(queries)
    print(f"offered load: {rate:.2f} queries/s "
          f"({UTILIZATION:.0%} of the estimated capacity)\n")

    poisson = with_arrivals(queries, poisson_arrivals(NUM_QUERIES, rate))
    report("Poisson arrivals",
           engine.run(poisson, sla_latency_s=SLA_LATENCY_S))

    bursty = with_arrivals(queries, bursty_arrivals(NUM_QUERIES, rate, burstiness=8.0))
    report("bursty arrivals (burstiness 8)",
           engine.run(bursty, sla_latency_s=SLA_LATENCY_S))


if __name__ == "__main__":
    main()
