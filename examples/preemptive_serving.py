#!/usr/bin/env python3
"""Preemption-aware paged-KV serving under overload.

A memory-constrained Llama2-7B deployment (8 CENT devices, capacity clamped
to the weights plus ~2.5 worst-case KV caches) takes 2.5x its sustainable
Poisson arrival rate.  The legacy ``admission="reserve"`` path books KV for
each request's full future context, so almost everything queues and blows
the SLA; ``admission="paged"`` (``repro.kvstore``) admits on the *current*
context, grows each request's block allocation as it decodes, and evicts a
victim when the pool runs dry — restoring it either by swapping its KV over
the CXL fabric or by re-prefilling it.  The study prints what preemption
buys (goodput, latency) and what it costs (evictions, swap time, recompute
tokens, stall).

Run with::

    python examples/preemptive_serving.py
"""

from repro.evaluation import format_table, overload_preemption_study
from repro.models.config import LLAMA2_7B

NUM_DEVICES = 8
NUM_QUERIES = 96
OVERLOAD = 2.5            # offered load over the constrained capacity
KV_CAPACITY_QUERIES = 2.5  # full-context KV caches that fit beside the weights


def main() -> None:
    study = overload_preemption_study(
        model=LLAMA2_7B,
        num_devices=NUM_DEVICES,
        num_queries=NUM_QUERIES,
        overload=OVERLOAD,
        kv_capacity_queries=KV_CAPACITY_QUERIES,
    )
    print(f"offered load: {study['rate_qps']:.2f} queries/s "
          f"({OVERLOAD:.1f}x the constrained capacity), "
          f"SLA {study['sla_latency_s']:.1f} s, "
          f"capacity {study['memory_capacity_bytes'] / 2**30:.1f} GiB\n")
    print(format_table(study["rows"],
                       "Admission modes on one overloaded deployment"))

    by_mode = {row["mode"]: row for row in study["rows"]}
    reserve = by_mode["reserve"]
    best = by_mode[study["best_mode"]]
    if best is not reserve:
        gain = best["goodput_tokens_per_s"] / max(reserve["goodput_tokens_per_s"], 1e-9)
        print(f"\n{study['best_mode']} delivers {gain:.1f}x the reserve path's "
              f"SLA goodput at {best['num_preemptions']} evictions "
              f"({best['preemption_stall_time_s']:.1f} s total stall).")


if __name__ == "__main__":
    main()
