#!/usr/bin/env python3
"""Total-cost-of-ownership explorer.

Walks through the paper's cost model: the per-unit cost of the CENT CXL
controller (die, packaging, NRE amortised over production volume), the bill
of materials of the CENT and GPU systems, their owned/rental 3-year TCO, and
the resulting tokens-per-dollar for Llama2-70B serving.

Run with::

    python examples/tco_explorer.py
"""

from repro import CentConfig, CentSystem, LLAMA2_70B
from repro.baselines.gpu import GPUSystem
from repro.cost.tco import (
    CENT_SYSTEM_COST,
    GPU_SYSTEM_COST,
    TcoModel,
    cent_controller_unit_cost,
)
from repro.mapping.parallelism import PipelineParallel
from repro.workloads.batching import max_feasible_batch


def main() -> None:
    print("CXL controller cost vs production volume")
    for volume in (1_000_000, 2_000_000, 3_000_000, 5_000_000):
        breakdown = cent_controller_unit_cost(production_volume=volume)
        print(f"  {volume / 1e6:.0f} M units: die ${breakdown['die']:.2f} + "
              f"packaging ${breakdown['packaging']:.2f} + NRE ${breakdown['nre']:.2f} "
              f"= ${breakdown['total']:.2f}")
    print()

    print("Hardware bill of materials")
    for system in (CENT_SYSTEM_COST, GPU_SYSTEM_COST):
        print(f"  {system.name}: ${system.hardware_cost_usd:,.0f}")
        for component, cost in system.components_usd.items():
            print(f"    {component:<16} ${cost:,.0f}")
    print()

    tco = TcoModel()
    config = CentConfig(num_devices=32, context_samples=3)
    cent = CentSystem(config, LLAMA2_70B)
    result = cent.run_inference(512, 3584, plan=PipelineParallel(32, LLAMA2_70B))
    cent_rate = tco.cent_tco_per_hour(32, result.average_power_w, owned=True)

    gpu = GPUSystem(LLAMA2_70B, num_gpus=4)
    batch = max_feasible_batch(LLAMA2_70B, gpu.total_memory_bytes, 512 + 3584 // 2,
                               requested_batch=128)
    gpu_latency = gpu.query_latency_s(batch, 512, 3584)
    gpu_tps = batch * 3584 / gpu_latency
    gpu_rate = tco.gpu_tco_per_hour(4, 1400.0, owned=True)

    cent_tpd = tco.tokens_per_dollar(result.end_to_end_throughput_tokens_per_s, cent_rate)
    gpu_tpd = tco.tokens_per_dollar(gpu_tps, gpu_rate)
    print("Llama2-70B serving cost efficiency (owned TCO)")
    print(f"  CENT: {result.end_to_end_throughput_tokens_per_s:,.0f} tokens/s at "
          f"${cent_rate:.2f}/h -> {cent_tpd / 1e6:.1f} M tokens/$")
    print(f"  GPU:  {gpu_tps:,.0f} tokens/s at ${gpu_rate:.2f}/h -> "
          f"{gpu_tpd / 1e6:.1f} M tokens/$")
    print(f"  CENT advantage: {cent_tpd / gpu_tpd:.1f}x more tokens per dollar")


if __name__ == "__main__":
    main()
