#!/usr/bin/env python3
"""Closed-loop cluster serving: epoch re-placement + backlog-feedback routing.

Two Llama2-7B tenants share a 12-device pool, but their traffic is
*phase-shifted*: ``early`` fires a heavy-tailed burst immediately, ``late``
fires an equal burst once the first should have drained.  Total demand is
symmetric, so every static placement splits the pool evenly — and each
tenant drowns during its own burst while its neighbour's devices idle.

The closed loop (``repro.cluster.control``) pauses every replica at epoch
boundaries, reads the measured backlog off ``queue_depth_timeline``,
re-anchors the router's drain model to it, and re-places the pool toward
the bursting tenant whenever the projected goodput gain beats the migration
stall (model weights reloading over the CXL fabric).  When a re-placement
dismantles a replica, its in-flight requests' KV is **live-migrated**
through host memory (``migration="live"``) so they resume at their
original progress instead of restarting from scratch.  The study prints
the static-vs-closed-loop comparison, the applied re-placements, and the
migration economics (requests moved, KV bytes, progress preserved).

Run with::

    python examples/closed_loop_serving.py

Pass ``--trace PREFIX`` to record the closed-loop run with the unified
telemetry layer and write ``PREFIX.perfetto.json`` (open in
chrome://tracing or https://ui.perfetto.dev — replicas appear as
processes, requests as tracks, with preemption instants and rebalance
decisions on the control track) plus ``PREFIX.jsonl`` for
``python -m repro.telemetry PREFIX.jsonl``.  Pass ``--report PREFIX``
(implies tracing) to additionally render ``PREFIX.report.html`` — the
self-contained attribution / utilization / SLO report.
"""

import argparse

from repro.evaluation import closed_loop_study, format_table
from repro.telemetry import TraceRecorder, write_jsonl, write_perfetto, write_report
from repro.telemetry.export import iter_scope_events

POOL_DEVICES = 12
QUERIES_PER_TENANT = 40


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="PREFIX", default=None,
                        help="record the closed-loop run and write "
                             "PREFIX.perfetto.json + PREFIX.jsonl")
    parser.add_argument("--report", metavar="PREFIX", default=None,
                        help="also write PREFIX.report.html (attribution + "
                             "utilization + SLO alerts); implies tracing")
    cli = parser.parse_args()

    recorder = TraceRecorder() if (cli.trace or cli.report) else None
    study = closed_loop_study(num_devices=POOL_DEVICES,
                              queries_per_tenant=QUERIES_PER_TENANT,
                              telemetry=recorder)
    print(format_table(
        study["rows"],
        f"Closed-loop vs static placement ({POOL_DEVICES} devices, "
        f"{QUERIES_PER_TENANT} queries/tenant)",
    ))
    print(f"\noperating point: {study['rate_qps']:.2f} qps per burst, "
          f"SLO {study['sla_s']:.1f} s, control epoch {study['epoch_s']:.1f} s")
    print("closed-loop goodput gain over static sla_aware: "
          f"{study['closed_loop_gain']:.2f}x "
          f"({study['num_rebalances']} re-placements, "
          f"{study['migration_stall_s']:.2f} s total migration stall)")
    print("live KV migration: "
          f"{study['num_migrated_requests']} in-flight requests moved, "
          f"{study['migrated_kv_bytes'] / 2**20:.1f} MiB of KV through host "
          f"memory in {study['kv_migration_time_s'] * 1e3:.1f} ms, "
          f"{study['restored_progress_tokens']} progress tokens preserved")
    print(f"open-loop path bit-exact across runs: {study['static_bit_exact']}")
    print("\nper-epoch pool goodput / backlog:")
    for start_s, goodput, backlog in study["epoch_timeline"]:
        bar = "#" * min(int(backlog), 60)
        print(f"  t={start_s:7.1f}s  goodput {goodput:8.1f} tok/s  "
              f"backlog {backlog:6.1f} {bar}")

    closed = study["closed_result"]
    if closed.alert_log:
        print(f"\nSLO alerts ({len(closed.alert_log)} fired, "
              f"{len(closed.alert_log.active)} active at end of run):")
        print(closed.alert_log.describe())
    elif recorder is not None:
        print("\nSLO alerts: none fired (stock rules)")

    if recorder is not None:
        recorder.finalize()
        if cli.trace:
            events = write_perfetto(recorder, f"{cli.trace}.perfetto.json")
            lines = write_jsonl(recorder, f"{cli.trace}.jsonl")
            print(f"\ntrace: {events} Perfetto events -> "
                  f"{cli.trace}.perfetto.json (open in chrome://tracing), "
                  f"{lines} records -> {cli.trace}.jsonl "
                  f"(inspect with python -m repro.telemetry)")
        if cli.report:
            path = write_report(f"{cli.report}.report.html",
                                iter_scope_events(recorder), result=closed,
                                title="closed_loop_serving")
            print(f"HTML report -> {path}")


if __name__ == "__main__":
    main()
