#!/usr/bin/env python3
"""Quickstart: simulate Llama2-7B inference on a small CENT system.

Builds an 8-device CENT deployment, lets the planner pick the throughput
mapping, runs one batch of queries (512 prompt / 512 output tokens) and
prints throughput, latency, power and the per-token latency breakdown.

Run with::

    python examples/quickstart.py
"""

from repro import CentConfig, CentSystem, LLAMA2_7B


def main() -> None:
    config = CentConfig(num_devices=8, context_samples=3)
    system = CentSystem(config, LLAMA2_7B)

    print(f"Model:                {LLAMA2_7B.name} "
          f"({LLAMA2_7B.total_params / 1e9:.1f} B parameters)")
    print(f"CENT devices:         {config.num_devices} "
          f"({config.total_channels} GDDR6-PIM channels)")
    print(f"Memory capacity:      {system.memory_capacity_bytes / 2**30:.0f} GiB")
    print(f"Peak internal BW:     {system.peak_internal_bandwidth_tbps:.0f} TB/s")
    print(f"Peak PIM compute:     {system.peak_pim_tflops:.0f} TFLOPS")
    print()

    plan = system.throughput_plan(context_length=1024)
    result = system.run_inference(prompt_tokens=512, decode_tokens=512, plan=plan)

    print(f"Parallelism plan:     {result.plan_name}")
    print(f"Queries in flight:    {result.queries_in_flight}")
    print(f"Devices used:         {result.devices_used}")
    print(f"Decode throughput:    {result.decode_throughput_tokens_per_s:,.0f} tokens/s")
    print(f"Prefill throughput:   {result.prefill_throughput_tokens_per_s:,.0f} tokens/s")
    print(f"Query latency:        {result.query_latency_s:.2f} s")
    print(f"Average power:        {result.average_power_w:,.0f} W")
    print(f"Energy per token:     {result.energy_per_token_j * 1000:.1f} mJ")
    print()
    print("Per-token latency breakdown:")
    for component, fraction in result.token_latency_breakdown.fractions().items():
        print(f"  {component:>5}: {100 * fraction:5.1f} %")


if __name__ == "__main__":
    main()
