#!/usr/bin/env python3
"""Long-context decoding: where a GPU-free PIM system shines.

Reasoning and video-generation workloads push context lengths to tens of
thousands of tokens.  This example extends Llama2-70B to 32K contexts (the
paper does the same via LongLoRA fine-tuning), sweeps the context length and
compares CENT's decoding throughput against the 4x A100 baseline, whose
feasible batch size collapses as the per-query KV cache grows.

Run with::

    python examples/long_context_reasoning.py
"""

import dataclasses

from repro import LLAMA2_70B, CentConfig, CentSystem
from repro.baselines.gpu import GPUSystem
from repro.dram.geometry import ChannelGeometry
from repro.mapping.parallelism import PipelineParallel
from repro.workloads.batching import max_feasible_batch

DECODE_TOKENS = 3584
CONTEXTS = (4096, 8192, 16384, 32768)


def cent_config(num_devices: int, context: int) -> CentConfig:
    """Long contexts need the denser 16 Gb GDDR6-PIM modules (1 TB system)."""
    if context > 8192:
        return CentConfig(num_devices=num_devices,
                          geometry=ChannelGeometry(bank_capacity_bytes=64 * 1024 * 1024),
                          kv_occupancy=0.8, context_samples=3)
    return CentConfig(num_devices=num_devices, context_samples=3)


def main() -> None:
    print(f"{'context':>8} {'CENT tok/s':>11} {'GPU batch':>10} {'GPU tok/s':>10} {'speedup':>8}")
    for context in CONTEXTS:
        prompt = context - DECODE_TOKENS
        model = dataclasses.replace(LLAMA2_70B, max_context=context)
        system = CentSystem(cent_config(32, context), model)
        plan = PipelineParallel(32, model)
        result = system.run_inference(prompt, DECODE_TOKENS, plan=plan, with_power=False)

        gpu = GPUSystem(model, num_gpus=4)
        batch = max_feasible_batch(model, gpu.total_memory_bytes,
                                   prompt + DECODE_TOKENS // 2, requested_batch=128)
        prefill = gpu.prefill_latency_s(batch, prompt)
        decode_time = gpu.query_latency_s(batch, prompt, DECODE_TOKENS) - prefill
        gpu_tps = batch * DECODE_TOKENS / decode_time

        cent_tps = result.decode_throughput_tokens_per_s
        print(f"{context:>8} {cent_tps:>11,.0f} {batch:>10} {gpu_tps:>10,.0f} "
              f"{cent_tps / gpu_tps:>8.2f}x")


if __name__ == "__main__":
    main()
