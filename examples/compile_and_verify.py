#!/usr/bin/env python3
"""Compile a transformer block to CENT instructions and verify it functionally.

This example exercises the lower layers of the library directly:

1. compile one Llama2-7B transformer block onto 8 PIM channels and inspect
   the resulting instruction mix (MAC operations dominate, which is why the
   hierarchical PIM-PNM design works),
2. serialise one operation to the textual trace format and read it back,
3. run the functional simulator on a scaled-down Llama-style block and check
   it against the NumPy reference implementation.

Run with::

    python examples/compile_and_verify.py
"""

import numpy as np

from repro.compiler import compile_transformer_block
from repro.core.functional import (
    FunctionalTransformerBlock,
    ReferenceTransformerBlock,
    make_block_weights,
)
from repro.isa import Opcode, decode_program, encode_program
from repro.models.config import LLAMA2_7B, ModelConfig


def main() -> None:
    # ------------------------------------------------------------ compilation
    block = compile_transformer_block(LLAMA2_7B, context_length=2048, num_channels=8)
    print(f"Compiled {LLAMA2_7B.name} block at context 2048 on 8 channels:")
    print(f"  operations:    {len(block.operations)}")
    print(f"  instructions:  {block.total_instructions:,}")
    print(f"  FLOPs:         {block.total_flops / 1e9:.2f} GFLOP")
    print(f"  DRAM traffic:  {block.total_dram_bytes / 2**20:.0f} MiB")
    print(f"  MAC fraction:  {100 * block.mac_fraction():.2f} % of arithmetic micro-ops")
    print(f"  channel usage: {100 * block.allocator.utilization():.1f} % of DRAM rows")
    print()

    gemv = block.operation("ffn.w1")
    trace = encode_program(gemv.program)
    decoded = decode_program(trace)
    mac_instructions = decoded.stats.count(Opcode.MAC_ABK)
    print(f"Trace round-trip of {gemv.name}: {len(decoded)} instructions, "
          f"{mac_instructions} MAC_ABK lines, {len(trace.splitlines())} trace lines")
    print("First three trace lines:")
    for line in trace.splitlines()[1:4]:
        print(f"  {line}")
    print()

    # ------------------------------------------------------ functional check
    tiny = ModelConfig(name="tiny-llama", num_layers=2, d_model=128, num_heads=4,
                       num_kv_heads=2, d_ff=256, vocab_size=1000, max_context=64)
    weights = make_block_weights(tiny, seed=7)
    reference = ReferenceTransformerBlock(tiny, weights)
    functional = FunctionalTransformerBlock(tiny, weights)
    rng = np.random.default_rng(7)
    max_error = 0.0
    x_ref = x_fun = rng.normal(0, 1, tiny.d_model).astype(np.float32)
    for position in range(4):
        x_ref = reference.forward(x_ref, position)
        x_fun = functional.forward(x_fun, position)
        max_error = max(max_error, float(np.max(np.abs(x_ref - x_fun))))
    scale = float(np.max(np.abs(x_ref))) or 1.0
    print("Functional simulator vs NumPy reference over 4 tokens: "
          f"max abs error {max_error:.4f} (relative {max_error / scale:.3%})")


if __name__ == "__main__":
    main()
